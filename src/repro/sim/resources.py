"""Resource models for the cluster simulation.

Three resource types cover everything the Hurricane model needs:

* :class:`Resource` — a counted semaphore (worker slots on a compute node).
* :class:`Store` — an unbounded FIFO queue with blocking ``get`` (RPC
  inboxes of simulated storage servers and task managers).
* :class:`BandwidthServer` — a processor-sharing capacity server: all active
  flows share ``rate`` equally, optionally capped per flow. Disks and NICs
  are uncapped PS servers; a CPU is a PS server with ``rate = cores`` and a
  per-flow cap of one core (one thread cannot use more than one core).

All three track a busy-time integral so the runtime can compute utilization
— the signal Hurricane's overload detector monitors (Section 4.2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event

_EPS = 1e-9


class Resource:
    """A counted semaphore with FIFO granting."""

    def __init__(self, env: Environment, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self._busy_integral = 0.0
        self._last_update = env.now

    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += self._in_use * (now - self._last_update)
        self._last_update = now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires once a token is granted."""
        self._account()
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
            tracer = self.env.tracer
            if tracer.enabled:
                # Stamp the enqueue time so the grant can report wait time.
                event._trace_wait_from = self.env.now
                tracer.counter(
                    f"resource.{self.name or 'anon'}",
                    queued=float(len(self._waiters)),
                    in_use=float(self._in_use),
                )
        return event

    def release(self) -> None:
        """Return one token, granting it to the oldest waiter if any."""
        self._account()
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            # Token passes directly to the next waiter; in_use is unchanged.
            waiter = self._waiters.popleft()
            tracer = self.env.tracer
            if tracer.enabled:
                waited = self.env.now - getattr(
                    waiter, "_trace_wait_from", self.env.now
                )
                label = self.name or "anon"
                tracer.inc(f"resource.{label}.wait_seconds", waited)
                tracer.inc(f"resource.{label}.grants_after_wait")
                tracer.counter(
                    f"resource.{label}",
                    queued=float(len(self._waiters)),
                    in_use=float(self._in_use),
                )
            waiter.succeed()
        else:
            self._in_use -= 1

    def busy_seconds(self) -> float:
        """Integral of tokens-in-use over time (token-seconds)."""
        self._account()
        return self._busy_integral


class Store:
    """An unbounded FIFO queue; ``get`` blocks until an item is available."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> List[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items

    def cancel(self, event: Event) -> bool:
        """Forget a waiting getter (its process died before being served).

        Returns False if the getter was already served (or never queued) —
        the caller then owns whatever value the event carries.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False


class _Flow:
    __slots__ = ("remaining", "event", "aborted")

    def __init__(self, remaining: float, event: Event):
        self.remaining = remaining
        self.event = event
        self.aborted = False


class BandwidthServer:
    """Processor-sharing capacity server.

    Active flows each receive ``min(per_flow_cap, rate / n_flows)``. Because
    every flow gets the same instantaneous rate, the next completion is the
    flow with the least remaining work; the server re-plans on every arrival
    and departure. Work units are arbitrary (bytes for disks and NICs,
    core-seconds for CPUs).
    """

    def __init__(
        self,
        env: Environment,
        rate: float,
        per_flow_cap: Optional[float] = None,
        name: str = "",
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"per_flow_cap must be positive, got {per_flow_cap}")
        self.env = env
        self.rate = float(rate)
        self.per_flow_cap = per_flow_cap
        self.name = name
        self._flows: List[_Flow] = []
        self._last_update = env.now
        self._generation = 0
        self._busy_integral = 0.0  # delivered work (units)

    # -- rate bookkeeping --------------------------------------------------

    def _rate_per_flow(self) -> float:
        n = len(self._flows)
        if n == 0:
            return 0.0
        share = self.rate / n
        if self.per_flow_cap is not None:
            share = min(share, self.per_flow_cap)
        return share

    def _settle(self) -> None:
        """Advance all flows to the current time."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        r = self._rate_per_flow()
        progress = r * dt
        self._busy_integral += progress * len(self._flows)
        for flow in self._flows:
            flow.remaining -= progress

    def _replan(self) -> None:
        """Schedule a wakeup at the next flow completion."""
        self._generation += 1
        if not self._flows:
            return
        r = self._rate_per_flow()
        shortest = min(flow.remaining for flow in self._flows)
        delay = max(0.0, shortest / r)
        generation = self._generation
        wake = self.env.timeout(delay)
        wake.callbacks.append(lambda _ev, g=generation: self._on_wake(g))

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later arrival/departure
        self._settle()
        finished = [f for f in self._flows if f.remaining <= _EPS]
        if not finished and self._flows:
            # Float round-off: the wake fired at the predicted completion of
            # the then-shortest flow and membership is unchanged (generation
            # matched), so that flow *is* done — complete it explicitly
            # rather than re-planning a zero-delay wake forever.
            shortest = min(self._flows, key=lambda f: f.remaining)
            shortest.remaining = 0.0
            finished = [shortest]
        self._flows = [f for f in self._flows if f.remaining > _EPS]
        for flow in finished:
            if not flow.aborted:
                flow.event.succeed()
        self._replan()

    # -- public API ---------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def demand(self) -> float:
        """Instantaneous demand relative to capacity (may exceed 1.0).

        With a per-flow cap this is ``n_flows * cap / rate`` — the load a CPU
        *would* serve if it had enough cores; the overload detector treats a
        sustained demand above ~1 as saturation.
        """
        if not self._flows:
            return 0.0
        cap = self.per_flow_cap if self.per_flow_cap is not None else self.rate
        return len(self._flows) * cap / self.rate

    def utilization(self) -> float:
        """Fraction of capacity currently in use (0..1)."""
        if not self._flows:
            return 0.0
        return self._rate_per_flow() * len(self._flows) / self.rate

    def delivered_work(self) -> float:
        """Total work served so far (units)."""
        self._settle()
        return self._busy_integral

    def transfer(self, amount: float) -> Event:
        """Start a flow of ``amount`` work units; the event fires at completion."""
        event = self.env.event()
        if amount <= 0:
            event.succeed()
            return event
        self._settle()
        self._flows.append(_Flow(float(amount), event))
        self._replan()
        return event

    def abort_all(self, fail_with: Optional[BaseException] = None) -> int:
        """Abort every in-flight flow (node crash).

        With ``fail_with`` set, each flow's event fails with that exception
        so waiting clients can observe the loss and retry elsewhere; without
        it, events simply never fire (callers must be interrupted separately).
        Returns the number of aborted flows.
        """
        self._settle()
        n = len(self._flows)
        for flow in self._flows:
            flow.aborted = True
            if fail_with is not None:
                flow.event.fail(fail_with)
        self._flows = []
        self._replan()
        return n
