"""Full-bisection network model.

The paper assumes the network is never the critical bottleneck: machines
hang off a single ToR switch with full bisection bandwidth, so a transfer
is constrained only by the two NIC endpoints (Section 3.5). A transfer
therefore places a flow on the sender's outbound NIC and the receiver's
inbound NIC simultaneously and completes when both have served the bytes;
co-located transfers (machine to itself) skip the NICs entirely, modeling
loopback.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.machine import Machine
from repro.sim.kernel import Environment


class Network:
    def __init__(self, env: Environment, rtt: float):
        self.env = env
        self.rtt = rtt
        self.bytes_moved = 0.0

    def transfer(
        self, src: Machine, dst: Machine, nbytes: float
    ) -> Generator:
        """Process: move ``nbytes`` from ``src`` to ``dst``.

        Usage: ``yield from network.transfer(a, b, n)`` inside a process, or
        ``env.process(network.transfer(a, b, n))`` for a fire-and-forget copy.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        yield self.env.timeout(self.rtt / 2.0)
        if src is not dst and nbytes > 0:
            self.bytes_moved += nbytes
            yield self.env.all_of(
                [src.nic_out.transfer(nbytes), dst.nic_in.transfer(nbytes)]
            )

    def rpc_delay(self) -> Generator:
        """Process: one small request/response round trip."""
        yield self.env.timeout(self.rtt)

    def sample_utilization(self, tracer) -> None:
        """Emit the cumulative cross-machine byte counter (trace sampler)."""
        tracer.counter("network", tid="network", bytes_moved=self.bytes_moved)
