"""R-MAT power-law graph generation (Table 4).

The paper evaluates PageRank on RMAT-24/27/30 graphs (2^scale vertices,
16 * 2^scale edges). :func:`generate_rmat_edges` produces actual edges for
real runs at small scales; :func:`rmat_partition_profile` estimates, by
sampling, how a graph's edges distribute over contiguous vertex-range
partitions — the skew summary the simulator needs for the big scales we
cannot materialize (an RMAT-30 edge list is ~256 GB).

Parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05), the standard "real
world" R-MAT setting from Chakrabarti et al. [15].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.sim.rand import SplitMix, derive_seed


@dataclass(frozen=True)
class RmatSpec:
    scale: int
    edge_factor: int = 16
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self):
        total = self.a + self.b + self.c + self.d
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"R-MAT probabilities sum to {total}, expected 1")
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")

    @property
    def vertices(self) -> int:
        return 1 << self.scale

    @property
    def edges(self) -> int:
        return self.edge_factor * self.vertices


def _sample_edge(spec: RmatSpec, gen: SplitMix) -> Tuple[int, int]:
    src = dst = 0
    ab = spec.a + spec.b
    abc = ab + spec.c
    for _ in range(spec.scale):
        src <<= 1
        dst <<= 1
        r = gen.random()
        if r < spec.a:
            pass
        elif r < ab:
            dst |= 1
        elif r < abc:
            src |= 1
        else:
            src |= 1
            dst |= 1
    return src, dst


def generate_rmat_edges(spec: RmatSpec, seed: int = 0) -> Iterator[Tuple[int, int]]:
    """Yield ``spec.edges`` directed edges (duplicates possible, as in RMAT)."""
    gen = SplitMix(derive_seed("rmat", spec.scale, spec.edge_factor, seed))
    for _ in range(spec.edges):
        yield _sample_edge(spec, gen)


def rmat_partition_profile(
    spec: RmatSpec, partitions: int, samples: int = 100_000, seed: int = 1
) -> List[float]:
    """Estimated fraction of edges whose *source* falls in each partition.

    Partitions are contiguous vertex ranges (range-partitioned adjacency
    lists). R-MAT's recursive construction concentrates edges in
    low-numbered vertex ranges, so partition 0 is the hub-heavy hot
    partition — the skew that makes GraphX straggle and Hurricane clone.
    The profile is scale-free enough that a 100k-edge sample characterizes
    even an RMAT-30 within a percent or two.
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    gen = SplitMix(derive_seed("rmat-profile", spec.scale, partitions, seed))
    counts = [0] * partitions
    span = spec.vertices / partitions
    for _ in range(samples):
        src, _dst = _sample_edge(spec, gen)
        counts[min(partitions - 1, int(src / span))] += 1
    return [c / samples for c in counts]


def rmat_transfer_matrix(
    spec: RmatSpec, partitions: int, samples: int = 100_000, seed: int = 2
) -> List[List[float]]:
    """Row-normalized matrix M[p][q]: fraction of partition p's out-edges
    whose destination lands in partition q (PageRank message routing)."""
    gen = SplitMix(derive_seed("rmat-matrix", spec.scale, partitions, seed))
    counts = [[0] * partitions for _ in range(partitions)]
    span = spec.vertices / partitions
    for _ in range(samples):
        src, dst = _sample_edge(spec, gen)
        p = min(partitions - 1, int(src / span))
        q = min(partitions - 1, int(dst / span))
        counts[p][q] += 1
    matrix: List[List[float]] = []
    for row in counts:
        total = sum(row)
        if total == 0:
            matrix.append([1.0 / partitions] * partitions)
        else:
            matrix.append([c / total for c in row])
    return matrix
