"""PageRank: 5 iterations over an R-MAT power-law graph (Table 4).

Each iteration is a scatter/gather pair per vertex-range partition:

* **scatter (i, p)** streams partition p's edge list with the iteration's
  rank bag side-loaded, emitting rank messages to destination partitions
  (routing weights from the sampled R-MAT transfer matrix);
* **gather (i, p)** streams partition p's incoming messages and aggregates
  per-vertex sums — a ``dict_sum`` merge, so Hurricane can clone the hub
  partitions that dominate a power-law graph.

Edge lists are re-read every iteration (the real I/O pattern); the builder
materializes one edge bag per (iteration, partition) so the destructive bag
reads of the simulator model that re-reading faithfully.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from repro.apps.calibration import (
    PAGERANK_EDGE_BYTES,
    PAGERANK_GATHER_CPU_PER_MB,
    PAGERANK_MERGE_CPU_PER_MB,
    PAGERANK_MESSAGE_BYTES,
    PAGERANK_SCATTER_CPU_PER_MB,
    PAGERANK_VERTEX_BYTES,
)
from repro.model.application import Application
from repro.model.costs import TaskCost
from repro.runtime.config import InputSpec
from repro.workloads.rmat import RmatSpec, rmat_partition_profile, rmat_transfer_matrix


def build_pagerank_sim(
    spec: RmatSpec,
    iterations: int = 5,
    partitions: int = 32,
    placement: Union[str, int] = "spread",
    profile_samples: int = 100_000,
) -> Tuple[Application, Dict[str, InputSpec]]:
    """The simulator PageRank app plus its input materialization."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    app = Application(f"pagerank-rmat{spec.scale}")
    profile = rmat_partition_profile(spec, partitions, samples=profile_samples)
    matrix = rmat_transfer_matrix(spec, partitions, samples=profile_samples)
    edge_bytes_total = spec.edges * PAGERANK_EDGE_BYTES
    vertex_bytes_part = spec.vertices * PAGERANK_VERTEX_BYTES // partitions
    message_ratio = PAGERANK_MESSAGE_BYTES / PAGERANK_EDGE_BYTES

    inputs: Dict[str, InputSpec] = {}
    for p in range(partitions):
        rank0 = app.bag(f"ranks.0.{p}")
        inputs[rank0.bag_id] = InputSpec(vertex_bytes_part, placement)
    for i in range(iterations):
        for p in range(partitions):
            edges = app.bag(f"edges.{i}.{p}")
            inputs[edges.bag_id] = InputSpec(
                int(edge_bytes_total * profile[p]), placement
            )
            app.bag(f"msgs.{i}.{p}")
        for p in range(partitions):
            app.bag(f"ranks.{i + 1}.{p}")
    for i in range(iterations):
        for p in range(partitions):
            msg_weights = {
                f"msgs.{i}.{q}": matrix[p][q]
                for q in range(partitions)
                if matrix[p][q] > 0
            }
            app.task(
                f"scatter.{i}.{p}",
                inputs=[f"edges.{i}.{p}", f"ranks.{i}.{p}"],
                outputs=list(msg_weights),
                phase=f"iter{i}.scatter",
                cost=TaskCost(
                    cpu_seconds_per_mb=PAGERANK_SCATTER_CPU_PER_MB,
                    output_ratio=message_ratio,
                    output_weights=msg_weights,
                ),
            )
            app.task(
                f"gather.{i}.{p}",
                inputs=[f"msgs.{i}.{p}"],
                outputs=[f"ranks.{i + 1}.{p}"],
                merge="dict_sum",
                phase=f"iter{i}.gather",
                cost=TaskCost(
                    cpu_seconds_per_mb=PAGERANK_GATHER_CPU_PER_MB,
                    output_ratio=0.0,
                    fixed_output_bytes=vertex_bytes_part,
                    merge_cpu_seconds_per_mb=PAGERANK_MERGE_CPU_PER_MB,
                ),
            )
    return app, inputs


# -- real task functions (local engine) ------------------------------------------

_DAMPING = 0.85


def _make_scatter(iteration: int, partitions: int, vertices: int):
    def scatter_fn(ctx):
        """Send rank/out_degree along each out-edge.

        Out-degrees are *side state* ({src: degree} dict records), not
        derived from the streamed edges: a clone only sees a subset of the
        partition's edges, so any full-partition statistic must come from
        a side input to keep the task safely cloneable.
        """
        sums: Dict[int, float] = {}
        degrees: Dict[int, int] = {}
        for record in ctx.side_records(0):
            sums.update(record)  # rank bags hold {vertex: incoming_sum}
        for record in ctx.side_records(1):
            degrees.update(record)
        span = vertices / partitions
        base = (1.0 - _DAMPING) / vertices
        for src, dst in ctx.records():
            # Rank is derived from the mergeable raw sum at *consumption*
            # time: rank = base + d * sum. (Applying the affine transform
            # inside gather would break clone merging — two partials would
            # each add the base term.)
            rank = base + _DAMPING * sums.get(src, 0.0)
            share = rank / degrees[src]
            part = min(partitions - 1, int(dst / span))
            ctx.emit(f_msg(iteration, part), (dst, share))

    return scatter_fn


def f_msg(iteration: int, partition: int) -> str:
    return f"msgs.{iteration}.{partition}"


def _make_gather(vertices: int, lo: int, hi: int):
    def gather_fn(ctx):
        """Aggregate incoming shares for vertices [lo, hi).

        Returns the *raw* per-vertex sum — a value that merges exactly
        under ``dict_sum`` no matter how the input was split across
        clones. The damping transform happens where ranks are consumed.
        """
        sums: Dict[int, float] = {}
        for dst, share in ctx.records():
            if lo <= dst < hi:
                sums[dst] = sums.get(dst, 0.0) + share
        return sums

    return gather_fn


def build_pagerank_local(
    vertices: int, partitions: int = 4, iterations: int = 2
) -> Application:
    """The real PageRank app for the local engine.

    Input bags: ``edges.{i}.{p}`` with (src, dst) records for every
    iteration (re-read each round, as on the cluster), ``ranks.0.{p}``
    and ``degrees.{i}.{p}`` with ``{vertex: value}`` dict records (the
    out-degrees are per-partition state every clone must see in full, so
    they are a side input, not derived from the stream). Gather tasks
    return dicts merged with ``dict_sum``; the final ranks land in
    ``ranks.{iterations}.{p}``. Use :func:`pagerank_local_inputs` to build
    the input dict from an edge list.
    """
    app = Application("pagerank-local")
    edge_codec = ("tuple", "u64", "u64")
    message_codec = ("tuple", "u64", "f64")
    span = vertices / partitions
    for p in range(partitions):
        app.bag(f"ranks.0.{p}")  # {vertex: rank} dict records
    for i in range(iterations):
        for p in range(partitions):
            app.bag(f"edges.{i}.{p}", codec=edge_codec)
            app.bag(f"degrees.{i}.{p}")  # {vertex: out_degree} dict records
            app.bag(f_msg(i, p), codec=message_codec)
        for p in range(partitions):
            app.bag(f"ranks.{i + 1}.{p}")
    for i in range(iterations):
        for p in range(partitions):
            app.task(
                f"scatter.{i}.{p}",
                inputs=[f"edges.{i}.{p}", f"ranks.{i}.{p}", f"degrees.{i}.{p}"],
                outputs=[f_msg(i, q) for q in range(partitions)],
                fn=_make_scatter(i, partitions, vertices),
                phase=f"iter{i}.scatter",
            )
        for p in range(partitions):
            lo, hi = int(p * span), int((p + 1) * span)
            app.task(
                f"gather.{i}.{p}",
                inputs=[f_msg(i, p)],
                outputs=[f"ranks.{i + 1}.{p}"],
                fn=_make_gather(vertices, lo, hi),
                merge="dict_sum",
                phase=f"iter{i}.gather",
            )
    return app


def pagerank_local_inputs(
    edges, vertices: int, partitions: int, iterations: int
) -> Dict[str, list]:
    """Build the input-bag dict for :func:`build_pagerank_local`.

    Partitions edges by source vertex range, replicates them (and the
    per-partition out-degree maps) for every iteration, and seeds uniform
    initial ranks.
    """
    span = vertices / partitions
    by_partition: Dict[int, list] = {p: [] for p in range(partitions)}
    degrees: Dict[int, Dict[int, int]] = {p: {} for p in range(partitions)}
    for src, dst in edges:
        p = min(partitions - 1, int(src / span))
        by_partition[p].append((src, dst))
        degrees[p][src] = degrees[p].get(src, 0) + 1
    inputs: Dict[str, list] = {}
    for i in range(iterations):
        for p in range(partitions):
            inputs[f"edges.{i}.{p}"] = by_partition[p]
            inputs[f"degrees.{i}.{p}"] = [degrees[p]]
    for p in range(partitions):
        lo, hi = int(p * span), int((p + 1) * span)
        # Rank bags carry raw sums s with rank = base + d*s; the uniform
        # initial rank 1/V corresponds to s0 = 1/V exactly.
        inputs[f"ranks.0.{p}"] = [{v: 1.0 / vertices for v in range(lo, hi)}]
    return inputs


def pagerank_final_ranks(result, vertices: int, partitions: int, iterations: int):
    """Extract final ranks from a LocalResult: rank = base + d * sum.

    Vertices that received no incoming rank mass hold exactly the base
    term, as in canonical PageRank.
    """
    base = (1.0 - _DAMPING) / vertices
    ranks: Dict[int, float] = {v: base for v in range(vertices)}
    for p in range(partitions):
        for record in result.records(f"ranks.{iterations}.{p}"):
            for vertex, total in record.items():
                ranks[vertex] = base + _DAMPING * total
    return ranks
