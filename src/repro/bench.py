"""``python -m repro bench`` — engine benchmark writing ``BENCH_dist.json``.

Runs the clicklog, hashjoin, and calibration workloads on the thread-pool
engine (:class:`~repro.local.LocalRuntime`) and on the multiprocess engine
(:class:`~repro.dist.DistRuntime`) at each requested worker count,
storage shard count (``--shards``), and replication factor
(``--replication``), then writes one JSON report with, per run: wall
time, input-record throughput, speedup over the local baseline, clone
counts, worker deaths, and (dist only) chunk-service latency
percentiles, pooled and per shard — the observable side of Eq. 1's
batch-sampling term, where ``--shards`` is the ``m`` servers a task's
``b`` outstanding batch requests spread across.

Replicated combinations additionally run one **failover probe**: the same
workload with a shard kill injected mid-stream, reporting the measured
failover latency (death detection to promotion live on every surviving
shard) and re-replication latency, plus the family-reset count — which
the probe requires to be *zero* for its parity to mean anything (the
whole point of replication is surviving the kill without replay).
Combinations where the replication factor exceeds the shard count are
skipped (there are not enough distinct processes to hold the copies).

Each workload also runs one **master failover probe**: a journaled run
with the master killed after its first assignments land, resumed by a
fresh master from the snapshot + WAL. The report records the measured
control-plane failover latency (``master_failover_ms``: journal load
through fleet re-adoption to the event loop restarting) and demands sink
parity with the local baseline.

Two memory-pressure axes ride the same matrix: ``--dataset-scale``
multiplies every workload's input size (one report then holds a sweep),
and ``--resident-bytes`` sets the shards' hot-cache budget so runs spill
sealed segments to disk beyond it. Each dist run reports its shards' RSS
high-water mark (``shard_rss_hwm_kb``), the number of sealed segments
written, the compaction yield of finished bags (``segments_compacted``,
``bytes_reclaimed``), and whether a shard-death recovery shipped
segments — all parity-gated like every other number here. Spill runs
additionally gate on the hot-cache peak staying within the budget
(``resident_peak_ok``): a "bounded" store that quietly blew through its
budget fails the report, not just a dashboard.

``--adaptive`` adds a closed-loop arm to the matrix: every dist
combination reruns with the per-task batch-depth controller and the
overload clone governor armed (see :mod:`repro.dist.adaptive`), and the
shifting-skew streaming click-log scenario (``clicklog_stream``) joins
the workload list. Adaptive runs record each task's ``b`` trajectory
(``(chunks_seen, depth)`` pairs) and every governor clone decision in
the report, parity-gated like everything else.

Every dist run's sink output is checked against the local baseline before
its numbers are reported, so a "fast" engine that drops or duplicates
chunks fails loudly instead of winning the benchmark.

The local engine is the honest baseline for speedup: its workers are
threads, so CPU-bound workloads (calibration is built to be one, see
:func:`repro.apps.calibration.calibration_mix`) are pinned to a single
core by the GIL no matter the thread count. The report records the host's
``cpu_count`` so a 1-core container's flat speedup curve is legible as a
hardware limit rather than an engine defect.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.apps.calibration import (
    CALIBRATION_ROUNDS,
    build_calibration_local,
    calibration_seeds,
)
from repro.apps.clicklog import build_clicklog_local
from repro.apps.clicklog_stream import build_clicklog_stream
from repro.apps.hashjoin import build_hashjoin_local
from repro.local import LocalRuntime
from repro.workloads.clicklog_data import (
    generate_clicklog,
    generate_stream_clicklog,
    region_name,
)
from repro.workloads.relations import generate_relation

#: Worker counts benchmarked when ``--workers`` is not given.
DEFAULT_WORKERS = (1, 2, 4)

#: Per-run wall-clock ceiling; generous because CI containers are slow.
RUN_TIMEOUT = 300.0


class _Workload:
    """One benchmarkable app: a fresh graph per run plus a parity probe."""

    def __init__(
        self,
        name: str,
        build: Callable[[], Any],
        inputs: Dict[str, list],
        snapshot: Callable[[Any], Any],
    ):
        self.name = name
        self.build = build
        self.inputs = inputs
        self.snapshot = snapshot
        self.input_records = sum(len(records) for records in inputs.values())


def _clicklog_workload(n_records: int, region_count: int) -> _Workload:
    names = [region_name(i) for i in range(region_count)]
    records = [
        ip for ip in generate_clicklog(n_records, skew=0.8, seed=11)
        if (ip >> 26) < region_count
    ]

    def snapshot(result):
        return {name: result.value(f"count.{name}") for name in names}

    return _Workload(
        "clicklog",
        lambda: build_clicklog_local(regions=names),
        {"clicklog": records},
        snapshot,
    )


def _clicklog_stream_workload(n_records: int, windows: int) -> _Workload:
    records = list(
        generate_stream_clicklog(n_records, skew=0.8, seed=11, windows=windows)
    )

    def snapshot(result):
        return {
            f"counts.{w}": dict(result.value(f"counts.{w}"))
            for w in range(windows)
        }

    return _Workload(
        "clicklog_stream",
        lambda: build_clicklog_stream(windows=windows),
        {"clicks": records},
        snapshot,
    )


def _hashjoin_workload(build_rows: int, probe_rows: int, partitions: int) -> _Workload:
    left = list(generate_relation(build_rows, key_space=1 << 16, skew=0.9, seed=1))
    right = list(generate_relation(probe_rows, key_space=1 << 16, skew=0.0, seed=2))

    def snapshot(result):
        # Join output order is interleaving-dependent; sort for parity.
        return sorted(
            row for p in range(partitions) for row in result.records(f"join.{p}")
        )

    return _Workload(
        "hashjoin",
        lambda: build_hashjoin_local(partitions=partitions),
        {"relation.r": left, "relation.s": right},
        snapshot,
    )


def _calibration_workload(n_seeds: int, rounds: int) -> _Workload:
    return _Workload(
        "calibration",
        lambda: build_calibration_local(rounds=rounds),
        {"seeds": calibration_seeds(n_seeds)},
        lambda result: result.value("checksum"),
    )


def _run_local(workload: _Workload) -> Dict[str, Any]:
    runtime = LocalRuntime(workload.build(), workers=4)
    started = time.perf_counter()
    result = runtime.run(dict(workload.inputs), timeout=RUN_TIMEOUT)
    seconds = time.perf_counter() - started
    return {
        "engine": "local",
        "workers": 4,
        "seconds": round(seconds, 4),
        "throughput_records_per_s": _throughput(workload, seconds),
        "total_clones": result.total_clones(),
        "clone_counts": dict(result.clone_counts),
        "snapshot": workload.snapshot(result),
    }


def _present(summary: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``None`` percentile fields: absent beats a fake null column."""
    return {key: value for key, value in summary.items() if value is not None}


def _run_dist(
    workload: _Workload,
    workers: int,
    shards: int,
    replication: int,
    baseline: Dict[str, Any],
    batch_requests: Optional[int] = None,
    resident_bytes: Optional[int] = None,
    dataset_scale: float = 1.0,
    adaptive: bool = False,
):
    from repro.dist import DistRuntime

    extra: Dict[str, Any] = {}
    if batch_requests is not None:
        extra["batch_requests"] = batch_requests
    if resident_bytes is not None:
        extra["resident_bytes"] = resident_bytes
    if adaptive:
        extra["adaptive"] = True
    runtime = DistRuntime(
        workload.build(),
        workers=workers,
        shards=shards,
        replication=replication,
        **extra,
    )
    started = time.perf_counter()
    result = runtime.run(dict(workload.inputs), timeout=RUN_TIMEOUT)
    seconds = time.perf_counter() - started
    matches = workload.snapshot(result) == baseline["snapshot"]
    # The hot-cache gate: the peak may legitimately exceed the budget by
    # one in-flight frame (eviction runs after the oversized insert
    # lands), so the allowance is a couple of chunk-sized frames — far
    # below any unbounded-buffering regression this gate exists to catch.
    resident_peak_ok = True
    if resident_bytes is not None:
        resident_peak_ok = (
            result.resident_peak_bytes
            <= resident_bytes + 2 * runtime.settings.chunk_size
        )
    summary: Dict[str, Any] = {}
    if adaptive:
        # The closed-loop evidence: each task's journaled b trajectory
        # (chunks_seen, depth) plus every governor clone evaluation —
        # the raw material for the trajectory plots and the oracle
        # comparison in the adaptive tests.
        summary = {
            "adaptive": True,
            "adaptive_b_trajectory": {
                task_id: [list(point) for point in trajectory]
                for task_id, trajectory in sorted(
                    result.adaptive_b_trajectory.items()
                )
            },
            "adaptive_final_depth": dict(
                sorted(result.adaptive_final_depth.items())
            ),
            "clone_decisions": result.clone_decisions,
        }
    return {
        **summary,
        "engine": "dist",
        "workers": workers,
        "shards": shards,
        "replication": replication,
        "batch_requests": runtime.settings.batch_requests,
        "dataset_scale": dataset_scale,
        "resident_bytes": resident_bytes,
        "seconds": round(seconds, 4),
        "throughput_records_per_s": _throughput(workload, seconds),
        "speedup_vs_local": round(baseline["seconds"] / seconds, 3) if seconds else None,
        "matches_local": matches,
        "total_clones": result.total_clones(),
        "clone_counts": dict(result.clone_counts),
        "worker_deaths": result.worker_deaths,
        "shard_deaths": result.shard_deaths,
        "chunks_processed": result.chunks_processed,
        # Spill evidence, parity-gated like every other number here: the
        # RSS high-water mark is what "bounded shard memory" means on a
        # real kernel, and segments_written > 0 is what proves the run
        # actually exercised the disk-backed layer at this budget.
        "segments_written": result.segments_written,
        "segments_compacted": result.segments_compacted,
        "bytes_reclaimed": result.bytes_reclaimed,
        "segment_resync": result.segment_resync,
        "shard_rss_hwm_kb": result.shard_rss_hwm_kb,
        "resident_peak_bytes": result.resident_peak_bytes,
        "resident_peak_ok": resident_peak_ok,
        "chunk_latency_ms": _present(result.chunk_latency_percentiles()),
        # JSON objects key on strings; shard indices survive round-trips
        # as "0", "1", ... in shard order.
        "per_shard_latency_ms": {
            str(shard): _present(summary)
            for shard, summary in sorted(
                result.per_shard_latency_percentiles().items()
            )
        },
    }


def _run_failover_probe(
    workload: _Workload,
    workers: int,
    shards: int,
    replication: int,
    baseline: Dict[str, Any],
    resident_bytes: Optional[int] = None,
):
    """One replicated run with a shard kill: measure failover, demand parity."""
    from repro.dist import DistRuntime, ShardRouter

    # Kill the shard that is primary for a streamed source bag, so the
    # injected death is guaranteed to land mid-remove_batch traffic.
    victim = ShardRouter(shards, replication).home(next(iter(workload.inputs)))
    extra: Dict[str, Any] = {}
    if resident_bytes is not None:
        extra["resident_bytes"] = resident_bytes
    runtime = DistRuntime(
        workload.build(),
        workers=workers,
        shards=shards,
        replication=replication,
        kill_shard=victim,
        # First remove_batch against the victim: quick-mode streams are
        # short, and a later trigger can miss the run entirely.
        kill_shard_after_ops=1,
        **extra,
    )
    started = time.perf_counter()
    result = runtime.run(dict(workload.inputs), timeout=RUN_TIMEOUT)
    seconds = time.perf_counter() - started
    matches = workload.snapshot(result) == baseline["snapshot"]
    return {
        "engine": "dist",
        "failover_probe": True,
        "workers": workers,
        "shards": shards,
        "replication": replication,
        "resident_bytes": resident_bytes,
        "killed_shard": victim,
        "seconds": round(seconds, 4),
        # Replication's contract: the kill is absorbed by promotion, not
        # replay — a probe that reset families fails parity accounting.
        "matches_local": matches and result.family_resets == 0,
        "shard_deaths": result.shard_deaths,
        "family_resets": result.family_resets,
        # With spill on, resync ships sealed segment files instead of
        # chunk snapshots — the probe records which path actually ran.
        "segment_resync": result.segment_resync,
        "segments_written": result.segments_written,
        "segments_compacted": result.segments_compacted,
        "bytes_reclaimed": result.bytes_reclaimed,
        "shard_rss_hwm_kb": result.shard_rss_hwm_kb,
        "failover_ms": [round(ms, 3) for ms in result.failover_ms],
        "resync_ms": [round(ms, 3) for ms in result.resync_ms],
    }


def _run_master_failover_probe(
    workload: _Workload,
    workers: int,
    shards: int,
    replication: int,
    baseline: Dict[str, Any],
):
    """One journaled run with a master kill: measure recovery, demand parity."""
    import shutil
    import tempfile

    from repro.dist import DistRuntime, MasterKilled

    def attempt(threshold: int):
        journal_dir = tempfile.mkdtemp(prefix="repro-bench-journal-")
        plan = dict(
            workers=workers,
            shards=shards,
            replication=replication,
            journal_dir=journal_dir,
        )
        started = time.perf_counter()
        try:
            runtime = DistRuntime(
                workload.build(),
                kill_master_after_records=threshold,
                **plan,
            )
            try:
                result = runtime.run(dict(workload.inputs), timeout=RUN_TIMEOUT)
            except MasterKilled as exc:
                successor = DistRuntime(workload.build(), **plan)
                result = successor.resume(exc.fleet, timeout=RUN_TIMEOUT)
            return result, time.perf_counter() - started
        finally:
            shutil.rmtree(journal_dir, ignore_errors=True)

    # Preferred kill point: right after the initial spawns plus the first
    # assignments — real work is in flight when the master dies. A
    # workload whose whole run journals fewer records than that never
    # reaches the threshold (the single-task calibration graph appends
    # spawn/assign/done and is finished); fall back to killing at the
    # spawn records themselves, which every run is guaranteed to hit.
    result, seconds = attempt(workers + 2)
    if result.master_recoveries == 0:
        result, seconds = attempt(workers)
    matches = workload.snapshot(result) == baseline["snapshot"]
    return {
        "engine": "dist",
        "master_failover_probe": True,
        "workers": workers,
        "shards": shards,
        "replication": replication,
        "seconds": round(seconds, 4),
        # The probe's contract: the kill fired, exactly one recovery
        # happened, and the sinks still match the local baseline.
        "matches_local": matches and result.master_recoveries == 1,
        "master_recoveries": result.master_recoveries,
        "master_failover_ms": [round(ms, 3) for ms in result.master_failover_ms],
        "family_resets": result.family_resets,
        "worker_deaths": result.worker_deaths,
        "shard_deaths": result.shard_deaths,
    }


def _throughput(workload: _Workload, seconds: float) -> Optional[float]:
    if seconds <= 0 or workload.input_records == 0:
        return None
    return round(workload.input_records / seconds, 1)


def _build_workloads(args, scale: float = 1.0) -> List[_Workload]:
    def scaled(count: int) -> int:
        return max(1, int(round(count * scale)))

    if args.quick:
        sizes = {
            "clicklog": (scaled(args.records or 2_000), 2),
            "clicklog_stream": (scaled(args.records or 3_000), 3),
            "hashjoin": (scaled(80), scaled(args.rows or 400), 2),
            "calibration": (scaled(60), args.rounds or 200),
        }
    else:
        sizes = {
            "clicklog": (scaled(args.records or 20_000), 4),
            "clicklog_stream": (scaled(args.records or 24_000), 4),
            "hashjoin": (scaled(300), scaled(args.rows or 2_500), 4),
            "calibration": (scaled(2_000), args.rounds or CALIBRATION_ROUNDS),
        }
    builders = {
        "clicklog": lambda: _clicklog_workload(*sizes["clicklog"]),
        "clicklog_stream": lambda: _clicklog_stream_workload(
            *sizes["clicklog_stream"]
        ),
        "hashjoin": lambda: _hashjoin_workload(*sizes["hashjoin"]),
        "calibration": lambda: _calibration_workload(*sizes["calibration"]),
    }
    unknown = [w for w in args.workloads if w not in builders]
    if unknown:
        raise SystemExit(f"unknown workload(s): {', '.join(unknown)}")
    return [builders[name]() for name in args.workloads]


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="repro bench", description="Benchmark the local and dist engines."
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes (CI smoke configuration)"
    )
    parser.add_argument(
        "--output", default="BENCH_dist.json", help="report path (default: %(default)s)"
    )
    parser.add_argument(
        "--workers",
        default=",".join(str(w) for w in DEFAULT_WORKERS),
        help="comma-separated dist worker counts (default: %(default)s)",
    )
    parser.add_argument(
        "--shards",
        default="1",
        help="comma-separated storage shard counts per dist run "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--replication",
        default="1",
        help="comma-separated replication factors per dist run; factors "
        "exceeding the shard count are skipped for that shard count "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--workloads",
        default="clicklog,hashjoin,calibration",
        help="comma-separated workload subset; clicklog_stream (the "
        "shifting-skew windowed scenario) joins automatically under "
        "--adaptive (default: %(default)s)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="additionally run every dist combination with the closed-loop "
        "batch-depth controller and clone governor armed, recording each "
        "task's b trajectory and every clone decision in the report",
    )
    parser.add_argument(
        "--dataset-scale",
        default="1",
        help="comma-separated input-size multipliers; the whole matrix "
        "reruns per scale, so one report holds a memory-pressure sweep "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--resident-bytes",
        type=int,
        help="per-shard hot-cache budget in bytes; dist runs spill sealed "
        "segments to disk beyond it and the report carries the shard RSS "
        "high-water mark as evidence (default: spill off)",
    )
    parser.add_argument(
        "--batch-requests",
        type=int,
        help="chunks requested per remove_batch RPC (Eq. 1's b; "
        "default: the runtime's)",
    )
    parser.add_argument("--records", type=int, help="clicklog input records")
    parser.add_argument("--rows", type=int, help="hashjoin probe-side rows")
    parser.add_argument("--rounds", type=int, help="calibration mixing rounds")
    args = parser.parse_args(argv)
    args.workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    if args.adaptive and "clicklog_stream" not in args.workloads:
        # The adaptive axis exists for the continuous-ingest scenario;
        # arm it even when the caller kept the historical workload list.
        args.workloads.append("clicklog_stream")
    try:
        args.worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    except ValueError:
        parser.error(f"--workers must be comma-separated integers, got {args.workers!r}")
    if not args.worker_counts or any(w < 1 for w in args.worker_counts):
        parser.error(f"--workers needs positive integers, got {args.workers!r}")
    try:
        args.shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--shards must be comma-separated integers, got {args.shards!r}")
    if not args.shard_counts or any(s < 1 for s in args.shard_counts):
        parser.error(f"--shards needs positive integers, got {args.shards!r}")
    try:
        args.replication_counts = [
            int(r) for r in args.replication.split(",") if r.strip()
        ]
    except ValueError:
        parser.error(
            f"--replication must be comma-separated integers, got {args.replication!r}"
        )
    if not args.replication_counts or any(r < 1 for r in args.replication_counts):
        parser.error(
            f"--replication needs positive integers, got {args.replication!r}"
        )
    if all(r > s for r in args.replication_counts for s in args.shard_counts):
        parser.error(
            "every --replication factor exceeds every --shards count; "
            "nothing would run"
        )
    try:
        args.dataset_scales = [
            float(s) for s in args.dataset_scale.split(",") if s.strip()
        ]
    except ValueError:
        parser.error(
            f"--dataset-scale must be comma-separated numbers, got "
            f"{args.dataset_scale!r}"
        )
    if not args.dataset_scales or any(s <= 0 for s in args.dataset_scales):
        parser.error(
            f"--dataset-scale needs positive numbers, got {args.dataset_scale!r}"
        )
    if args.resident_bytes is not None and args.resident_bytes < 1:
        parser.error(
            f"--resident-bytes must be >= 1, got {args.resident_bytes}"
        )
    return args


def run_bench(argv=None) -> Dict[str, Any]:
    """Run the benchmark matrix and return the report dict."""
    args = _parse_args(argv)
    report: Dict[str, Any] = {
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "quick": args.quick,
            "workers": args.worker_counts,
            "shards": args.shard_counts,
            "replication": args.replication_counts,
            "workloads": args.workloads,
            "dataset_scale": args.dataset_scales,
            "resident_bytes": args.resident_bytes,
            "batch_requests": args.batch_requests,
            "adaptive": args.adaptive,
        },
        "workloads": {},
    }
    for scale in args.dataset_scales:
        for workload in _build_workloads(args, scale):
            # One report entry per (workload, scale); the unscaled matrix
            # keeps its historical keys so downstream parsers survive.
            entry_key = (
                workload.name if scale == 1.0 else f"{workload.name}@x{scale:g}"
            )
            print(
                f"[bench] {entry_key}: local baseline ...", flush=True
            )
            baseline = _run_local(workload)
            runs = [dict(baseline)]
            runs[0].pop("snapshot")
            runs[0]["dataset_scale"] = scale
            for shards in args.shard_counts:
                for replication in args.replication_counts:
                    if replication > shards:
                        print(
                            f"[bench] {entry_key}: skip r={replication} "
                            f"(> {shards} shards)",
                            flush=True,
                        )
                        continue
                    for workers in args.worker_counts:
                        print(
                            f"[bench] {entry_key}: dist x{workers} "
                            f"({shards} shard{'s' if shards != 1 else ''}, "
                            f"r={replication}) ...",
                            flush=True,
                        )
                        runs.append(
                            _run_dist(
                                workload,
                                workers,
                                shards,
                                replication,
                                baseline,
                                batch_requests=args.batch_requests,
                                resident_bytes=args.resident_bytes,
                                dataset_scale=scale,
                            )
                        )
                        if args.adaptive:
                            print(
                                f"[bench] {entry_key}: dist x{workers} "
                                f"({shards} shard"
                                f"{'s' if shards != 1 else ''}, "
                                f"r={replication}) --adaptive ...",
                                flush=True,
                            )
                            runs.append(
                                _run_dist(
                                    workload,
                                    workers,
                                    shards,
                                    replication,
                                    baseline,
                                    batch_requests=args.batch_requests,
                                    resident_bytes=args.resident_bytes,
                                    dataset_scale=scale,
                                    adaptive=True,
                                )
                            )
                    if replication > 1:
                        # Replicated topologies get a failover probe: the
                        # same workload with a shard killed mid-stream,
                        # recording the promotion/resync latencies.
                        workers = max(args.worker_counts)
                        print(
                            f"[bench] {entry_key}: failover probe "
                            f"x{workers} ({shards} shards, r={replication}, "
                            f"kill 1) ...",
                            flush=True,
                        )
                        runs.append(
                            _run_failover_probe(
                                workload,
                                workers,
                                shards,
                                replication,
                                baseline,
                                resident_bytes=args.resident_bytes,
                            )
                        )
            # One master failover probe per workload, at the largest
            # worker count and the smallest shard topology: the
            # control-plane recovery path is shard-count-independent, so
            # one point suffices for the report.
            workers = max(args.worker_counts)
            shards = args.shard_counts[0]
            print(
                f"[bench] {entry_key}: master failover probe x{workers} "
                f"({shards} shard{'s' if shards != 1 else ''}) ...",
                flush=True,
            )
            runs.append(
                _run_master_failover_probe(workload, workers, shards, 1, baseline)
            )
            parity_ok = all(
                r.get("matches_local", True) and r.get("resident_peak_ok", True)
                for r in runs
            )
            speedups = [
                r["speedup_vs_local"]
                for r in runs
                if r.get("speedup_vs_local") is not None
            ]
            report["workloads"][entry_key] = {
                "input_records": workload.input_records,
                "dataset_scale": scale,
                "parity_ok": parity_ok,
                "best_dist_speedup": max(speedups) if speedups else None,
                "runs": runs,
            }
    report["parity_ok"] = all(
        entry["parity_ok"] for entry in report["workloads"].values()
    )
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"[bench] wrote {args.output} (parity_ok={report['parity_ok']})")
    return report


def main(argv=None) -> int:
    report = run_bench(argv)
    return 0 if report["parity_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
