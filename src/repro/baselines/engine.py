"""The stage/barrier execution engine and per-system profiles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.spec import ClusterSpec, paper_cluster
from repro.errors import TaskMemoryExceeded
from repro.sim.kernel import Environment
from repro.sim.resources import Resource
from repro.units import GB, MB


@dataclass(frozen=True)
class EngineProfile:
    """Per-system execution constants (fit against Tables 2-4)."""

    name: str
    job_startup: float  # driver/AM startup before stage 0
    stage_overhead: float  # scheduling barrier cost per stage
    task_launch_overhead: float  # per-task launch (JVM fork for Hadoop)
    slots_per_machine: int = 16  # one core per task
    #: Hard per-task memory cap; exceeding it crashes the job (Spark's 16GB).
    memory_limit_bytes: Optional[int] = None
    #: Above this working set the task spills (Hadoop/GraphX behaviour).
    spill_threshold_bytes: Optional[int] = None
    #: Extra disk bytes per spilled byte (write + re-read merge passes).
    spill_io_factor: float = 3.0
    #: In-memory working set per byte of reduce input (JVM object overhead).
    memory_expansion: float = 2.5
    #: CPU factor applied to every task's cpu_seconds (framework tax).
    cpu_factor: float = 1.0
    #: Disk I/O granularity for simulated transfers.
    io_unit: int = 32 * MB


#: Spark 2.2.0: fast tasks, 16 GB hard task-memory limit (Section 5.3).
SPARK_PROFILE = EngineProfile(
    name="spark",
    job_startup=3.5,
    stage_overhead=0.6,
    task_launch_overhead=0.03,
    memory_limit_bytes=16 * GB,
    memory_expansion=2.5,
)

#: Hadoop 2.7.4: heavy JVM-per-task model, spills instead of crashing.
HADOOP_PROFILE = EngineProfile(
    name="hadoop",
    job_startup=22.0,
    stage_overhead=4.0,
    task_launch_overhead=0.8,
    spill_threshold_bytes=1 * GB,
    spill_io_factor=3.0,
    memory_expansion=2.5,
    cpu_factor=1.6,
)

#: GraphX on Spark: per-iteration stage pairs, serialization-heavy CPU,
#: spills when a partition's working set exceeds the task budget.
GRAPHX_PROFILE = EngineProfile(
    name="graphx",
    job_startup=8.0,
    stage_overhead=2.5,
    task_launch_overhead=0.03,
    spill_threshold_bytes=16 * GB,
    # Fit to Table 4's RMAT-27 row (GraphX 3007s): vertex-cut replication,
    # boxed-object message overhead and GC thrash give GraphX a ~10x memory
    # amplification and very expensive spill passes; with these two numbers
    # calibrated at RMAT-27, the RMAT-30 prediction independently lands at
    # the paper's ">12h" outcome.
    spill_io_factor=16.0,
    memory_expansion=10.0,
    cpu_factor=2.0,
)


@dataclass(frozen=True)
class StageTask:
    """One task of one stage.

    ``input_bytes`` is what the task reads (a local split for map stages, a
    shuffled partition for reduce stages); ``shuffle_out_bytes`` is written
    to local disk for the next stage; ``working_set_bytes`` drives the
    memory limit / spill model.
    """

    index: int
    input_bytes: float
    cpu_seconds: float
    shuffle_out_bytes: float = 0.0
    final_out_bytes: float = 0.0
    working_set_bytes: float = 0.0
    #: Whether the working structure can spill to disk (an external sort /
    #: sort-merge join can; ClickLog's in-memory bitset cannot — exceeding
    #: the task limit then crashes the job, as in Figure 12).
    spillable: bool = False


@dataclass(frozen=True)
class Stage:
    name: str
    kind: str  # "map" (local input) or "reduce" (fetch from all map nodes)
    tasks: Tuple[StageTask, ...]

    def __post_init__(self):
        if self.kind not in ("map", "reduce"):
            raise ValueError(f"unknown stage kind {self.kind!r}")


@dataclass
class BaselineReport:
    system: str
    job: str
    runtime: float
    stage_times: Dict[str, float] = field(default_factory=dict)
    straggler_times: Dict[str, float] = field(default_factory=dict)
    spilled_bytes: float = 0.0
    crashed: Optional[str] = None
    timed_out: bool = False

    @property
    def completed(self) -> bool:
        return self.crashed is None and not self.timed_out


class BaselineEngine:
    """Runs a stage list with barriers on the simulated cluster."""

    def __init__(
        self,
        profile: EngineProfile,
        cluster_spec: Optional[ClusterSpec] = None,
    ):
        self.profile = profile
        self.env = Environment()
        self.cluster = Cluster(self.env, cluster_spec or paper_cluster())
        machines = len(self.cluster)
        self._slots = Resource(
            self.env, profile.slots_per_machine * machines, name="slots"
        )
        self._free = {m: profile.slots_per_machine for m in range(machines)}
        self.spilled_bytes = 0.0
        self._crash: Optional[BaseException] = None

    # -- slot management -----------------------------------------------------

    def _acquire_slot(self, preferred: Optional[int]):
        yield self._slots.request()
        if preferred is not None and self._free[preferred] > 0:
            machine = preferred
        else:
            machine = max(self._free, key=self._free.get)
        self._free[machine] -= 1
        return machine

    def _release_slot(self, machine: int) -> None:
        self._free[machine] += 1
        self._slots.release()

    # -- task body -----------------------------------------------------------------

    def _chunked_io(self, machine, nbytes: float):
        """Disk I/O in io_unit chunks so long transfers share fairly."""
        unit = self.profile.io_unit
        remaining = nbytes
        while remaining > 0:
            step = min(unit, remaining)
            yield machine.disk_io(step)
            remaining -= step

    def _fetch_shuffle(self, dest_machine, nbytes: float):
        """Reduce-side fetch: partition bytes live on every map machine."""
        machines = self.cluster.machines
        share = nbytes / len(machines)
        pending = []
        for source in machines:
            pending.append(self.env.process(self._fetch_one(source, dest_machine, share)))
        yield self.env.all_of(pending)

    def _fetch_one(self, source, dest, nbytes: float):
        yield from self._chunked_io(source, nbytes)
        yield from self.cluster.network.transfer(source, dest, nbytes)

    def _task_proc(self, stage: Stage, task: StageTask, preferred: Optional[int]):
        profile = self.profile
        machine_index = yield from self._acquire_slot(preferred)
        machine = self.cluster.machine(machine_index)
        try:
            yield self.env.timeout(profile.task_launch_overhead)
            if stage.kind == "map":
                yield from self._chunked_io(machine, task.input_bytes)
            else:
                yield from self._fetch_shuffle(machine, task.input_bytes)
            working = task.working_set_bytes or (
                task.input_bytes * profile.memory_expansion
            )
            limit = profile.memory_limit_bytes
            if limit is not None and working > limit:
                if not task.spillable:
                    raise TaskMemoryExceeded(
                        f"{stage.name}[{task.index}]", int(working), limit
                    )
                # Spillable structure: pay external-sort passes instead of
                # crashing (Spark's sort-merge join under the task limit).
                spill = (working - limit) * profile.spill_io_factor
                self.spilled_bytes += spill
                yield from self._chunked_io(machine, spill)
            if (
                profile.spill_threshold_bytes is not None
                and working > profile.spill_threshold_bytes
            ):
                spill = (working - profile.spill_threshold_bytes) * profile.spill_io_factor
                self.spilled_bytes += spill
                yield from self._chunked_io(machine, spill)
            if task.cpu_seconds > 0:
                yield machine.compute(task.cpu_seconds * profile.cpu_factor)
            if task.shuffle_out_bytes > 0:
                yield from self._chunked_io(machine, task.shuffle_out_bytes)
            if task.final_out_bytes > 0:
                yield from self._chunked_io(machine, task.final_out_bytes)
        finally:
            self._release_slot(machine_index)

    # -- job driver --------------------------------------------------------------------

    def _job_proc(self, stages: List[Stage], report: BaselineReport):
        yield self.env.timeout(self.profile.job_startup)
        machines = len(self.cluster)
        for stage in stages:
            yield self.env.timeout(self.profile.stage_overhead)
            start = self.env.now
            procs = []
            task_starts = []
            for position, task in enumerate(stage.tasks):
                preferred = position % machines if stage.kind == "map" else None
                procs.append(
                    self.env.process(self._task_proc(stage, task, preferred))
                )
                task_starts.append(start)
            yield self.env.all_of(procs)
            report.stage_times[stage.name] = self.env.now - start
            report.straggler_times[stage.name] = self.env.now - start
        return self.env.now

    def run(
        self, job_name: str, stages: List[Stage], timeout: Optional[float] = None
    ) -> BaselineReport:
        report = BaselineReport(system=self.profile.name, job=job_name, runtime=0.0)
        driver = self.env.process(self._job_proc(stages, report))
        try:
            if timeout is not None:
                finish = self.env.any_of([driver, self.env.timeout(timeout, "timeout")])
                event, _value = self.env.run(until=finish)
                if event is not driver:
                    report.timed_out = True
                    report.runtime = timeout
                    return report
            else:
                self.env.run(until=driver)
        except TaskMemoryExceeded as oom:
            report.crashed = str(oom)
            report.runtime = self.env.now
            report.spilled_bytes = self.spilled_bytes
            return report
        report.runtime = self.env.now
        report.spilled_bytes = self.spilled_bytes
        return report
