"""Simulated cluster hardware.

Machines have a multi-core CPU (processor-sharing, one-core cap per
thread), a RAID disk array, and full-duplex NICs; the network provides full
bisection bandwidth so only NIC endpoints constrain transfers — matching
the paper's deployment assumption (Section 3.5). The default
:func:`~repro.cluster.spec.paper_cluster` preset reproduces the paper's
testbed: 32 machines, 2x Xeon E5-2630v3 (16 cores), 128 GB RAM, RAID-0 at
330 MB/s, 40 GigE.
"""

from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.cluster.spec import ClusterSpec, MachineSpec, paper_cluster
from repro.cluster.cluster import Cluster

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Machine",
    "MachineSpec",
    "Network",
    "paper_cluster",
]
