"""Cost annotations consumed by the cluster simulator.

A :class:`TaskCost` tells the simulated worker how expensive one byte of
input is and where the output bytes go. The unit conventions:

* CPU work is measured in **core-seconds**; a task with
  ``cpu_seconds_per_mb = 0.04`` processes 25 MB/s on one core.
* ``output_ratio`` is total output bytes per input byte.
* ``output_weights`` splits the output across the task's output bags
  (Phase 1 of ClickLog splits by region weight); it defaults to uniform.
* ``fixed_output_bytes`` models aggregation tasks whose output size does not
  scale with input (a bitset, a count).
* Side inputs (every input bag except the first) are *state*: they are read
  fully when a worker — original or clone — starts, which is exactly the
  "loading task state in a new clone" cost in the paper's cloning heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class TaskCost:
    #: Core-seconds of CPU per MB of streamed input.
    cpu_seconds_per_mb: float = 0.0
    #: Output bytes produced per streamed input byte (across all output bags).
    output_ratio: float = 1.0
    #: Fraction of output routed to each output bag id; defaults to uniform.
    output_weights: Optional[Dict[str, float]] = None
    #: Output bytes that are produced once per task regardless of input size
    #: (e.g. ClickLog Phase 2 emits one bitset). Split by output_weights.
    fixed_output_bytes: int = 0
    #: Core-seconds per MB spent by the merge task over clone partial outputs.
    merge_cpu_seconds_per_mb: float = 0.01
    #: Size of the merged output relative to the *largest* partial output
    #: (1.0 for bitset-union/count merges; clones of concat tasks don't merge).
    merge_output_ratio: float = 1.0
    #: One-off core-seconds at worker start (JVM-ish task setup).
    startup_cpu_seconds: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    def weights_for(self, output_bags) -> Dict[str, float]:
        """Normalized output weights over ``output_bags``."""
        bags = list(output_bags)
        if not bags:
            return {}
        if self.output_weights is None:
            share = 1.0 / len(bags)
            return {bag: share for bag in bags}
        total = sum(self.output_weights.get(bag, 0.0) for bag in bags)
        if total <= 0:
            raise ValueError("output_weights assign zero weight to every output bag")
        return {bag: self.output_weights.get(bag, 0.0) / total for bag in bags}
