"""Eq. 1: batch-sampling utilization — analytic vs Monte-Carlo.

Reproduces the utilization ladder quoted in Section 3.3: b = 1 -> >=63%,
b = 2 -> 86%, b = 3 -> 95%, b = 10 -> >99% "even for thousands of storage
nodes".
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.utilization import expected_utilization, simulate_utilization
from repro.experiments.common import format_rows

BATCH_FACTORS = (1, 2, 3, 5, 10)
NODE_COUNTS = (32, 1000)


def run_eq1(
    batch_factors: Sequence[int] = BATCH_FACTORS,
    node_counts: Sequence[int] = NODE_COUNTS,
) -> List[dict]:
    rows = []
    for m in node_counts:
        for b in batch_factors:
            rows.append(
                {
                    "m": m,
                    "b": b,
                    "analytic": expected_utilization(b, m),
                    "monte_carlo": simulate_utilization(b, m, rounds=300),
                }
            )
    return rows


def main() -> None:
    print(format_rows(run_eq1()))


if __name__ == "__main__":
    main()
