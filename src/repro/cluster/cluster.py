"""The assembled cluster: machines plus network."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.cluster.spec import ClusterSpec
from repro.sim.kernel import Environment


class Cluster:
    """All machines of a job plus the fabric connecting them.

    ``speed_factors`` (one per machine) injects machine skew; the default is
    a homogeneous cluster. Compute node *i* and storage node *i* are
    co-located on machine *i*, as in the paper's deployment, but the runtime
    layers treat the two roles independently, so experiments can use any
    subset of machines for either role.
    """

    def __init__(
        self,
        env: Environment,
        spec: ClusterSpec,
        speed_factors: Optional[Sequence[float]] = None,
    ):
        if speed_factors is not None and len(speed_factors) != spec.machines:
            raise ValueError(
                f"got {len(speed_factors)} speed factors for {spec.machines} machines"
            )
        self.env = env
        self.spec = spec
        self.machines: List[Machine] = [
            Machine(
                env,
                spec.machine,
                index,
                speed_factor=(speed_factors[index] if speed_factors else 1.0),
            )
            for index in range(spec.machines)
        ]
        self.network = Network(env, rtt=spec.machine.network_rtt)

    def __len__(self) -> int:
        return len(self.machines)

    def machine(self, index: int) -> Machine:
        return self.machines[index]

    def alive_machines(self) -> List[Machine]:
        return [m for m in self.machines if m.alive]

    def aggregate_disk_bandwidth(self) -> float:
        """Peak cluster-wide storage bandwidth (bytes/s) across live machines."""
        return sum(m.spec.disk_bandwidth for m in self.alive_machines())
