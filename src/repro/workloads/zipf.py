"""Zipf-distributed partition weights (Section 5.1).

The paper introduces skew with a Zipf parameter ``0 <= s <= 1`` and reports
largest/smallest partition imbalances of 1x, 2.3x, 8x, 28x and 64x for
s = 0, 0.2, 0.5, 0.8 and 1. With ``n`` rank-weighted partitions the
imbalance is exactly ``n**s``, and the reported ladder is ``64**s`` — so
the evaluation used 64 partitions (regions), which is what we default to.

With s = 1 and 64 regions the largest region holds ``1/H_64 = 21.1%`` of
the input; the paper quotes 19.6% (a slightly different normalization),
which shifts its Amdahl bound from 4.5x to ~4.4x — immaterial for the
shape of every figure (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List


def zipf_weights(n: int, s: float) -> List[float]:
    """Normalized weights ``i^-s / H_n(s)`` for ranks i = 1..n.

    >>> weights = zipf_weights(64, 0.0)
    >>> abs(weights[0] - 1 / 64) < 1e-12
    True
    """
    if n < 1:
        raise ValueError(f"need at least one partition, got {n}")
    if s < 0:
        raise ValueError(f"zipf parameter must be >= 0, got {s}")
    raw = [float(i) ** -s for i in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def range_partition_weights(n_keys: int, partitions: int, s: float) -> List[float]:
    """Zipf key mass aggregated over ``partitions`` contiguous key ranges.

    This is the partitioning a join sees: keys are range-partitioned ("the
    key range divided into equal parts") while frequencies are Zipf by key
    rank, so the first range absorbs the head of the distribution. Uses the
    continuous approximation of the generalized harmonic numbers — exact
    enough for workload modeling at any ``n_keys``.

    >>> weights = range_partition_weights(1 << 20, 32, 0.0)
    >>> abs(weights[0] - 1 / 32) < 1e-9
    True
    """
    import math

    if partitions < 1 or n_keys < partitions:
        raise ValueError(f"need n_keys >= partitions >= 1, got {n_keys}/{partitions}")
    if s < 0:
        raise ValueError(f"zipf parameter must be >= 0, got {s}")

    def harmonic(x: float) -> float:
        if x <= 0:
            return 0.0
        if abs(s - 1.0) < 1e-9:
            return math.log(x) + 0.5772156649015329
        return (x ** (1.0 - s) - 1.0) / (1.0 - s) + 1.0

    total = harmonic(n_keys)
    bounds = [n_keys * p / partitions for p in range(partitions + 1)]
    weights = [
        (harmonic(bounds[p + 1]) - harmonic(bounds[p])) / total
        for p in range(partitions)
    ]
    norm = sum(weights)
    return [w / norm for w in weights]


def imbalance(weights: List[float]) -> float:
    """Largest/smallest partition ratio (the paper's skew measure)."""
    if not weights:
        raise ValueError("no weights")
    smallest = min(weights)
    if smallest <= 0:
        raise ValueError("weights must be positive")
    return max(weights) / smallest


def largest_share(weights: List[float]) -> float:
    """Fraction of the input in the largest partition."""
    return max(weights)
