"""Bag-to-shard placement for the sharded storage tier.

The paper's storage layer is *always-spread*: data is distributed
uniformly pseudorandomly over **all** ``m`` storage nodes, so cloning a
task never concentrates load on one node and batch sampling (Eq. 1,
``rho(b, m) = 1 - (1 - 1/m)^(b*m)``) has an ``m`` to sample over. The
sim models that policy through :class:`~repro.storage.replication.ReplicaMap`;
:class:`ShardRouter` is the same pseudorandom-spread placement for the
*real* dist engine, at bag granularity: every bag id is homed on one of
``m`` storage-server processes by a keyed stable hash
(:func:`~repro.storage.replication.stable_spread`), and with
``replication=r`` its copies live on the next ``r - 1`` shards in ring
order (:func:`~repro.storage.replication.ring_successors` — the same
ring rule :class:`~repro.storage.replication.ReplicaMap` encodes, so
sim and real replica sets agree for every ``(m, r)``).

Placement must be a pure function of ``(bag_id, m)``:

* **deterministic across processes** — the master and every worker
  compute placement independently (no placement RPCs, no shared state),
  so the hash cannot depend on per-process salt like Python's builtin
  ``hash`` under ``PYTHONHASHSEED``;
* **stable across shard respawns** — when the master respawns a dead
  shard, the replacement takes over the dead shard's index and socket
  address, so live bags are never re-homed; a respawn changes *which
  process* serves an index, never *which index* serves a bag;
* **uniform** — over many bag ids the shard loads stay balanced within
  binomial tolerance (pinned by ``tests/test_property_sharding.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.storage.replication import ring_successors, stable_spread


class ShardRouter:
    """Deterministic pseudorandom spread of bag ids over ``m`` shards."""

    def __init__(self, shards: int, replication: int = 1):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not 1 <= replication <= shards:
            raise ValueError(
                f"replication must be in [1, {shards}], got {replication}"
            )
        self.shards = shards
        self.replication = replication
        #: Bumped on every respawn of each shard index; placement does not
        #: depend on it (respawn keeps the index), it only tracks history.
        self.generations: List[int] = [0] * shards

    def home(self, bag_id: str) -> int:
        """The primary shard index for ``bag_id`` (pure, process-independent)."""
        return stable_spread(bag_id, self.shards)

    def replicas(self, bag_id: str) -> List[int]:
        """All shard indices holding a copy of ``bag_id``, primary first.

        The home shard plus its ``replication - 1`` ring successors —
        exactly :class:`~repro.storage.replication.ReplicaMap` ring
        semantics with ``node_indices=range(m)``.
        """
        return ring_successors(self.home(bag_id), self.shards, self.replication)

    def respawn(self, shard: int) -> int:
        """Record that ``shard`` was replaced; returns the new generation.

        Placement is intentionally unaffected: the replacement process
        inherits the shard index (and its socket address), so every bag
        homed there before the death is homed there after it.
        """
        self.generations[shard] += 1
        return self.generations[shard]

    def partition(self, bag_ids: Iterable[str]) -> Dict[int, List[str]]:
        """Group ``bag_ids`` by home shard (for fan-out RPCs)."""
        groups: Dict[int, List[str]] = {}
        for bag_id in bag_ids:
            groups.setdefault(self.home(bag_id), []).append(bag_id)
        return groups

    def assignments(self, bag_ids: Iterable[str]) -> Dict[str, int]:
        """Explicit ``bag_id -> shard`` map (debugging / tests)."""
        return {bag_id: self.home(bag_id) for bag_id in bag_ids}

    def load(self, bag_ids: Sequence[str]) -> Tuple[int, ...]:
        """Bag count per shard over ``bag_ids`` (uniformity checks)."""
        counts = [0] * self.shards
        for bag_id in bag_ids:
            counts[self.home(bag_id)] += 1
        return tuple(counts)

    def __repr__(self) -> str:
        if self.replication > 1:
            return (
                f"ShardRouter(shards={self.shards}, "
                f"replication={self.replication})"
            )
        return f"ShardRouter(shards={self.shards})"
