"""``repro.dist`` — the multiprocess, GIL-free execution engine.

Three kinds of real OS processes cooperate over ``multiprocessing``
connections (Section 3's scheduling/data-plane split made concrete):

* ``m`` **storage shard** processes, each hosting the data bags a shared
  :class:`~repro.dist.sharding.ShardRouter` homes at its index and
  enforcing exactly-once chunk removal server-side
  (:mod:`repro.dist.server`, :mod:`repro.dist.sharding`);
* N **worker** processes running task functions against a batch-sampling
  chunk client that keeps ``b`` requests outstanding per streamed bag,
  spread across the shards its bags land on — Eq. 1's ``b`` *and* ``m``
  made real (:mod:`repro.dist.worker`, :mod:`repro.dist.client`);
* the **master** (the calling process) driving the shared
  :class:`~repro.model.execution_graph.ExecutionGraph`: it assigns nodes,
  monitors per-task progress, issues mid-task clone messages to idle
  workers, reconciles clone partials through merge nodes, and recovers
  from killed workers — and killed *storage shards* — by resetting the
  affected task families (:mod:`repro.dist.runtime`).

The master itself is recoverable: with ``journal_dir`` set it write-ahead
journals every control-plane decision (assignments, clone grants, done
transitions, family condemnations, demotion epochs) with periodic
compacted snapshots (:mod:`repro.dist.journal`). A master death surfaces
as :class:`MasterKilled` carrying the surviving :class:`MasterFleet`;
``DistRuntime.resume`` on a fresh runtime replays the journal, re-adopts
the worker and shard fleet, and drives the run to the same sinks.

Because workers are processes, CPU-bound task functions scale across
cores — the thread-pool :class:`~repro.local.LocalRuntime` is capped at
one core by the GIL. Results are the same, byte for byte, on every
worker and shard count; ``python -m repro bench`` measures the difference.
"""

from repro.dist.runtime import DistResult, DistRuntime, MasterFleet, MasterKilled
from repro.dist.sharding import ShardRouter

__all__ = [
    "DistResult",
    "DistRuntime",
    "MasterFleet",
    "MasterKilled",
    "ShardRouter",
]
