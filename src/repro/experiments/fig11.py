"""Figure 11: throughput under compute-node and master crashes.

ClickLog, 320GB (10GB/machine), 32 machines. The fault plan crashes a
compute node once in phase 1 and once in phase 2, each followed 20 seconds
after recovery by an application-master crash. Expected shape (Section 5.2):

* the phase-1 node crash restarts *all* workers (phase 1 is one task);
* the phase-2 node crash restarts only the affected region families —
  throughput degrades ~25% and recovers;
* master crashes barely dent throughput: recovery replays the done bag in
  under a second and compute nodes keep draining bags meanwhile.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.timeline import mean_between
from repro.apps.clicklog import build_clicklog_sim
from repro.experiments.common import auto_granularity, full_scale
from repro.cluster.spec import paper_cluster
from repro.runtime.config import HurricaneConfig
from repro.runtime.faults import FaultPlan
from repro.runtime.job import SimJob
from repro.units import GB


def run_fig11(full: Optional[bool] = None, machines: int = 32) -> dict:
    input_bytes = 320 * GB if full_scale(full) else 80 * GB
    app, inputs = build_clicklog_sim(input_bytes, skew=1.0)

    # First, a clean run to locate the phases.
    config = HurricaneConfig(granularity=auto_granularity(input_bytes))
    clean = SimJob(
        app.graph, inputs, cluster_spec=paper_cluster(machines), config=config
    ).run(timeout=6 * 3600)
    p1_start, p1_end = clean.phases["phase1"]
    p2_start, p2_end = clean.phases["phase2"]

    crash1 = p1_start + 0.4 * (p1_end - p1_start)
    crash2 = p2_start + 0.3 * (p2_end - p2_start)
    plan = (
        FaultPlan()
        .crash_compute(at=crash1, node=5, restart_after=5.0)
        .crash_master(at=crash1 + 20.0)
        .crash_compute(at=crash2, node=9, restart_after=5.0)
        .crash_master(at=crash2 + 20.0)
    )
    app, inputs = build_clicklog_sim(input_bytes, skew=1.0)
    report = SimJob(
        app.graph,
        inputs,
        cluster_spec=paper_cluster(machines),
        config=config,
        fault_plan=plan,
    ).run(timeout=6 * 3600)
    events = {
        kind: [t for t, k, _ in report.events if k == kind]
        for kind in (
            "compute_crash",
            "compute_restart",
            "master_crash",
            "master_recovered",
            "family_restarted",
        )
    }
    master_crash = events["master_crash"][0] if events["master_crash"] else None
    return {
        "clean_runtime_s": clean.runtime,
        "faulty_runtime_s": report.runtime,
        "timeline": report.timeline,
        "events": events,
        "crash_times": (crash1, crash2),
        "throughput_around_master_crash": (
            mean_between(report.timeline, master_crash - 5, master_crash)
            if master_crash
            else None,
            mean_between(report.timeline, master_crash, master_crash + 5)
            if master_crash
            else None,
        ),
    }


def main() -> None:
    from repro.analysis.render import timeline_chart

    result = run_fig11()
    for key, value in result.items():
        if key == "timeline":
            continue
        print(f"{key}: {value}")
    markers = [
        (t, kind)
        for kind in ("compute_crash", "master_crash")
        for t in result["events"][kind]
    ]
    print("\naggregate throughput (MB/s) over time (crashes marked):")
    print(timeline_chart(result["timeline"], events=sorted(markers)))


if __name__ == "__main__":
    main()
