"""Typed serialization of records into fixed-size chunks.

Hurricane workers serialize application records into chunks before inserting
them into bags, and deserialize after removing them (Section 2.2). Two
invariants from the paper are enforced here:

* **records never cross chunk boundaries** — every chunk is independently
  decodable, which is what lets any clone process any chunk in isolation;
* **typed iterators compose** — primitive codecs (ints, floats, strings,
  bytes) combine into tuples and lists to represent nested record types.
"""

from repro.serde.chunks import (
    ChunkBuilder,
    chunk_records,
    iter_chunk,
    iter_chunks,
)
from repro.serde.codecs import (
    BoolCodec,
    BytesCodec,
    Codec,
    Float64Codec,
    Int64Codec,
    ListCodec,
    TupleCodec,
    UInt64Codec,
    Utf8Codec,
    codec_for,
)
from repro.serde.varint import decode_uvarint, encode_uvarint

__all__ = [
    "BoolCodec",
    "BytesCodec",
    "ChunkBuilder",
    "Codec",
    "Float64Codec",
    "Int64Codec",
    "ListCodec",
    "TupleCodec",
    "UInt64Codec",
    "Utf8Codec",
    "chunk_records",
    "codec_for",
    "decode_uvarint",
    "encode_uvarint",
    "iter_chunk",
    "iter_chunks",
]
