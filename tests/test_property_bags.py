"""Property-based tests on bag semantics and storage invariants."""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rand import SplitMix, cyclic_permutations, derive_seed
from repro.storage.bags import SimBag
from repro.storage.local import LocalBag
from repro.workloads.zipf import imbalance, zipf_weights


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=64, max_value=4096),
)
def test_simbag_conserves_bytes(writes, nodes, take_size):
    """take() hands out every written byte exactly once, never more."""
    bag = SimBag("b", range(nodes), chunk_size=4096)
    gen = SplitMix(derive_seed("prop", len(writes)))
    for nbytes in writes:
        bag.write(gen.randrange(nodes), nbytes)
    bag.seal()
    total = bag.written_total()
    grabbed = 0
    for _ in range(10_000):
        node = gen.randrange(nodes)
        got = bag.take(node, take_size)
        grabbed += got
        if bag.remaining_total() == 0:
            break
    # Drain stragglers deterministically.
    for node in range(nodes):
        while True:
            got = bag.take(node, take_size)
            if not got:
                break
            grabbed += got
    assert grabbed == total
    assert bag.remaining_total() == 0


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_localbag_exactly_once_concurrent(n_chunks, n_threads):
    bag = LocalBag("b")
    for i in range(n_chunks):
        bag.insert(i.to_bytes(4, "big"))
    bag.seal()
    outputs = [[] for _ in range(n_threads)]

    def consume(out):
        while True:
            chunk = bag.remove()
            if chunk is None:
                return
            out.append(chunk)

    threads = [
        threading.Thread(target=consume, args=(outputs[i],))
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    combined = [c for out in outputs for c in out]
    assert sorted(combined) == sorted(i.to_bytes(4, "big") for i in range(n_chunks))


@given(st.integers(min_value=1, max_value=64), st.integers())
def test_cyclic_permutations_cover_all_nodes(n, seed):
    perms = cyclic_permutations(n, seed & (2**64 - 1))
    for _ in range(3):
        cycle = next(perms)
        assert sorted(cycle) == list(range(n))


@given(
    st.integers(min_value=2, max_value=512),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_zipf_imbalance_formula(n, s):
    """Largest/smallest weight ratio is exactly n**s for rank weights."""
    weights = zipf_weights(n, s)
    assert abs(imbalance(weights) - n**s) / n**s < 1e-9
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(weights[i] >= weights[i + 1] for i in range(n - 1))
