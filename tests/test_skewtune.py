"""Tests for the SkewTune-like related-work baseline."""

import pytest

from repro.baselines.engine import Stage, StageTask
from repro.baselines.skewtune import SkewTuneConfig, SkewTuneEngine
from repro.cluster.spec import paper_cluster
from repro.units import GB, MB


def _skewed_reduce_stage(straggler_cpu=60.0, n_tasks=16):
    tasks = [
        StageTask(i, 64 * MB, cpu_seconds=1.0) for i in range(n_tasks - 1)
    ]
    tasks.append(StageTask(n_tasks - 1, 2 * GB, cpu_seconds=straggler_cpu))
    return Stage("reduce", "reduce", tuple(tasks))


def test_mitigation_triggers_on_straggler():
    engine = SkewTuneEngine(paper_cluster(8))
    report = engine.run("job", [_skewed_reduce_stage()], timeout=3600)
    assert report.completed
    assert engine.mitigations >= 1


def test_mitigation_speeds_up_straggler():
    mitigated = SkewTuneEngine(paper_cluster(8)).run(
        "job", [_skewed_reduce_stage()], timeout=3600
    )
    disabled = SkewTuneEngine(
        paper_cluster(8), config=SkewTuneConfig(mitigation_factor=1e9)
    ).run("job", [_skewed_reduce_stage()], timeout=3600)
    assert mitigated.runtime < disabled.runtime * 0.75


def test_no_mitigation_when_uniform():
    tasks = tuple(StageTask(i, 64 * MB, cpu_seconds=2.0) for i in range(16))
    engine = SkewTuneEngine(paper_cluster(8))
    report = engine.run("job", [Stage("reduce", "reduce", tasks)], timeout=3600)
    assert report.completed
    assert engine.mitigations == 0


def test_map_stages_untouched():
    stage = Stage(
        "map", "map", tuple(StageTask(i, 64 * MB, cpu_seconds=1.0) for i in range(8))
    )
    engine = SkewTuneEngine(paper_cluster(4))
    report = engine.run("job", [stage], timeout=3600)
    assert report.completed and engine.mitigations == 0


def test_mitigation_costs_data_movement():
    """The mitigated run must still be slower than a run where the work
    was balanced from the start (SkewTune pays scan + redistribution)."""
    balanced = tuple(
        StageTask(i, 128 * MB, cpu_seconds=60.0 / 16) for i in range(16)
    )
    ideal = SkewTuneEngine(paper_cluster(8)).run(
        "job", [Stage("reduce", "reduce", balanced)], timeout=3600
    )
    mitigated = SkewTuneEngine(paper_cluster(8)).run(
        "job", [_skewed_reduce_stage()], timeout=3600
    )
    assert mitigated.runtime > ideal.runtime
