"""The adaptive policy module: depth controller, clone governor, sampling.

Everything here is pure arithmetic (no processes), so the tests can
drive the controller with synthetic latency models and check it against
the oracle — the best static depth found by exhaustive sweep — plus the
damping guarantees (hysteresis dead band, bounded steps) and the
journaling contract (snapshot/restore is exact continuation).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.utilization import expected_utilization
from repro.dist.adaptive import (
    AdaptiveConfig,
    BatchDepthController,
    CloneGovernor,
    _parity_probe,
    derive_batch_depth,
    nearest_rank,
    reservoir_sample,
    utilization_floor,
)


# ---------------------------------------------------------------------------
# Eq. 1 floor and the derived depth


class TestUtilizationFloor:
    def test_single_shard_any_depth_saturates(self):
        assert utilization_floor(1, 0.95) == 1.0

    @pytest.mark.parametrize("shards", [2, 4, 8, 64])
    @pytest.mark.parametrize("target", [0.5, 0.9, 0.95, 0.99])
    def test_floor_meets_target_and_is_tight(self, shards, target):
        floor = utilization_floor(shards, target)
        assert expected_utilization(floor, shards) >= target - 1e-9
        if floor > 1.0:
            # Just below the floor, Eq. 1 must miss the target: the
            # inversion is exact, not merely sufficient.
            assert expected_utilization(floor * 0.98, shards) < target

    def test_rejects_degenerate_arguments(self):
        with pytest.raises(ValueError):
            utilization_floor(0, 0.95)
        with pytest.raises(ValueError):
            utilization_floor(4, 1.0)

    def test_parity_probe_reports_floor_utilization(self):
        floor, utilization = _parity_probe(8, 0.95)
        assert floor == utilization_floor(8, 0.95)
        assert utilization >= 0.95 - 1e-9


class TestDeriveBatchDepth:
    CONFIG = AdaptiveConfig()

    def test_compute_bound_task_gets_the_floor(self):
        # Processing far slower than the RPC: no pipelining needed beyond
        # what Eq. 1 requires of storage.
        depth = derive_batch_depth(0.001, 1.0, 4, self.CONFIG)
        assert depth == math.ceil(utilization_floor(4, 0.95) - 1e-9)

    def test_fast_consumer_gets_bandwidth_delay_product(self):
        # 10ms RPC, 2ms per chunk: five chunks must be in flight.
        assert derive_batch_depth(0.010, 0.002, 1, self.CONFIG) == 5

    def test_clamped_to_config_bounds(self):
        assert derive_batch_depth(10.0, 0.001, 1, self.CONFIG) == 16
        tight = AdaptiveConfig(min_batch=3, max_batch=6)
        assert derive_batch_depth(0.0, 0.0, 1, tight) == 3
        assert derive_batch_depth(10.0, 0.001, 1, tight) == 6

    def test_no_signal_falls_back_to_floor(self):
        assert derive_batch_depth(0.0, 0.0, 1, self.CONFIG) == 1


# ---------------------------------------------------------------------------
# the closed loop against a synthetic pipeline model


def model_throughput(depth: int, latency_s: float, service_s: float) -> float:
    """Chunks/s of the fetch pipeline at a static depth.

    With ``depth`` requests outstanding the RPC stream delivers
    ``depth / latency_s`` chunks/s; the consumer drains ``1 /
    service_s``.  The slower side bounds the run.
    """
    return min(depth / latency_s, 1.0 / service_s)


def drive(controller, latency_s, service_s, chunks, rpc_every=4):
    """Feed ``chunks`` observations from a steady (latency, service) phase."""
    for i in range(chunks):
        samples = [latency_s] if i % rpc_every == 0 else []
        controller.observe(latencies=samples, service_s=service_s)


class TestControllerConvergence:
    def test_converges_to_best_static_depth(self):
        # Oracle: sweep every static depth, keep the best throughput.
        # The controller, fed the same steady measurements, must land
        # within 5% of that oracle (the ISSUE's acceptance bound).
        config = AdaptiveConfig(max_batch=16)
        for latency_s, service_s in [(0.008, 0.004), (0.020, 0.002), (0.004, 0.008)]:
            best = max(
                model_throughput(b, latency_s, service_s) for b in range(1, 17)
            )
            controller = BatchDepthController(config, shards=1, initial_depth=4)
            drive(controller, latency_s, service_s, chunks=200)
            achieved = model_throughput(controller.depth, latency_s, service_s)
            assert achieved >= 0.95 * best, (
                f"L={latency_s} s={service_s}: depth {controller.depth} "
                f"gives {achieved:.1f}/s vs oracle {best:.1f}/s"
            )

    def test_tracks_a_mid_run_shift(self):
        # The shifting-skew scenario in miniature: the task speeds up
        # mid-run (hot window drained), so the pipeline must deepen.
        config = AdaptiveConfig(max_batch=16)
        controller = BatchDepthController(config, shards=1, initial_depth=2)
        drive(controller, 0.008, 0.008, chunks=100)
        settled = controller.depth
        assert settled <= 2  # compute-bound: shallow is right
        drive(controller, 0.008, 0.001, chunks=100)
        assert controller.depth == 8  # latency/service = 8 after the shift
        assert controller.depth > settled

    def test_decisions_only_every_window(self):
        config = AdaptiveConfig(window=8)
        controller = BatchDepthController(config, shards=1, initial_depth=1)
        for i in range(1, 25):
            controller.observe(latencies=[0.01], service_s=0.001)
            assert controller.decisions == i // 8


class TestControllerDamping:
    def test_hysteresis_dead_band_holds_shrinks(self):
        # Target 3 vs current 4 is inside a 25% downward dead band: the
        # depth holds rather than oscillating around a noisy target.
        config = AdaptiveConfig(window=1, hysteresis=0.25)
        controller = BatchDepthController(config, shards=1, initial_depth=4)
        moved = controller.observe(latencies=[0.003], service_s=0.001)
        assert moved is None and controller.depth == 4

    def test_deepening_is_not_damped(self):
        # An upward gap of even one step starves the consumer if held
        # back, so hysteresis applies only to shrinks.
        config = AdaptiveConfig(window=1, hysteresis=0.25)
        controller = BatchDepthController(config, shards=1, initial_depth=4)
        assert controller.observe(latencies=[0.005], service_s=0.001) == 5

    def test_zero_hysteresis_shrinks_on_any_gap(self):
        config = AdaptiveConfig(window=1, hysteresis=0.0)
        controller = BatchDepthController(config, shards=1, initial_depth=4)
        assert controller.observe(latencies=[0.003], service_s=0.001) == 3

    def test_step_bound_limits_each_decision(self):
        # Target 16 from depth 1: reached in max_step=2 increments, one
        # per window, never a jump.
        config = AdaptiveConfig(window=1, max_step=2, hysteresis=0.0)
        controller = BatchDepthController(config, shards=1, initial_depth=1)
        depths = [controller.depth]
        for _ in range(12):
            controller.observe(latencies=[0.016], service_s=0.001)
            depths.append(controller.depth)
        assert max(
            abs(b - a) for a, b in zip(depths, depths[1:])
        ) <= 2
        assert controller.depth == 16

    def test_trajectory_records_every_move(self):
        config = AdaptiveConfig(window=1, max_step=2, hysteresis=0.0)
        controller = BatchDepthController(config, shards=1, initial_depth=1)
        for _ in range(6):
            controller.observe(latencies=[0.008], service_s=0.001)
        assert controller.trajectory[0] == (0, 1)
        chunks = [c for c, _ in controller.trajectory]
        assert chunks == sorted(chunks)
        assert controller.trajectory[-1][1] == controller.depth


class TestControllerSnapshot:
    def test_round_trip_is_exact_continuation(self):
        config = AdaptiveConfig(window=3)
        original = BatchDepthController(config, shards=2, initial_depth=4)
        drive(original, 0.012, 0.002, chunks=10)
        resumed = BatchDepthController.restore(
            config, 2, original.snapshot()
        )
        assert resumed.snapshot() == original.snapshot()
        # The same suffix of observations lands both in the same state —
        # mid-window counters included, or a resumed worker would decide
        # at the wrong chunk.
        drive(original, 0.012, 0.002, chunks=11)
        drive(resumed, 0.012, 0.002, chunks=11)
        assert resumed.snapshot() == original.snapshot()

    def test_snapshot_is_primitives_only(self):
        controller = BatchDepthController(AdaptiveConfig(), shards=1)
        drive(controller, 0.01, 0.001, chunks=10)

        def primitive(value):
            if isinstance(value, (list, tuple)):
                return all(primitive(v) for v in value)
            if isinstance(value, dict):
                return all(primitive(v) for v in value.values())
            return value is None or isinstance(value, (bool, int, float, str))

        assert primitive(controller.snapshot())


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(
                st.floats(min_value=-1.0, max_value=10.0, allow_nan=False),
                max_size=3,
            ),
            st.one_of(
                st.none(),
                st.floats(min_value=-1.0, max_value=10.0, allow_nan=False),
            ),
        ),
        max_size=80,
    ),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=12),
)
def test_property_depth_stays_bounded(stream, min_batch, extra):
    """Whatever the measurement stream, b never leaves [min, max]."""
    config = AdaptiveConfig(
        min_batch=min_batch,
        max_batch=min_batch + extra,
        window=2,
        hysteresis=0.1,
    )
    controller = BatchDepthController(config, shards=3)
    for latencies, service_s in stream:
        controller.observe(latencies=latencies, service_s=service_s)
        assert config.min_batch <= controller.depth <= config.max_batch
    for _chunks, depth in controller.trajectory:
        assert config.min_batch <= depth <= config.max_batch


# ---------------------------------------------------------------------------
# clone governor


class TestCloneGovernor:
    CONFIG = AdaptiveConfig(
        clone_queue_chunks=8, clone_p95_drift=1.5, clone_onset_decisions=2
    )

    def test_deep_queue_needs_sustained_onset(self):
        governor = CloneGovernor(self.CONFIG)
        assert governor.evaluate(20) is False  # first overloaded evaluation
        assert governor.evaluate(20) is True  # second in a row: allowed

    def test_transient_spike_grants_nothing(self):
        governor = CloneGovernor(self.CONFIG)
        assert governor.evaluate(20) is False
        assert governor.evaluate(0) is False  # spike over: onset resets
        assert governor.evaluate(20) is False

    def test_p95_drift_against_first_window_baseline(self):
        governor = CloneGovernor(self.CONFIG)
        governor.observe_latencies("shard0", [0.010] * 20)  # baseline
        governor.observe_latencies("shard0", [0.011] * 20)
        assert governor.drift() == pytest.approx(1.1)
        assert governor.evaluate(0) is False  # 1.1 < 1.5: not drifted
        governor.observe_latencies("shard0", [0.020] * 20)
        assert governor.evaluate(0) is False  # drifted, onset 1 of 2
        assert governor.evaluate(0) is True

    def test_slow_from_the_start_is_not_drift(self):
        # A shard that was always slow sets a slow baseline; drift flags
        # shards that *got* slower, which is the machine-skew signal.
        governor = CloneGovernor(self.CONFIG)
        governor.observe_latencies("shard0", [0.5] * 10)
        governor.observe_latencies("shard0", [0.5] * 10)
        assert governor.drift() == pytest.approx(1.0)

    def test_decision_log_records_every_evaluation(self):
        governor = CloneGovernor(self.CONFIG)
        governor.evaluate(20)
        governor.evaluate(0)
        assert [d["allow"] for d in governor.decisions] == [False, False]
        assert governor.decisions[0]["queue_deep"] is True
        assert governor.decisions[1]["onset"] == 0

    def test_snapshot_round_trip_preserves_onset(self):
        governor = CloneGovernor(self.CONFIG)
        governor.observe_latencies("s", [0.01] * 5)
        governor.observe_latencies("s", [0.05] * 5)
        governor.evaluate(20)
        resumed = CloneGovernor.restore(self.CONFIG, governor.snapshot())
        assert resumed.snapshot() == governor.snapshot()
        # One overloaded evaluation happened pre-snapshot; the restored
        # governor's next one completes the onset exactly like the
        # original's would.
        assert governor.evaluate(20) is True
        assert resumed.evaluate(20) is True


# ---------------------------------------------------------------------------
# reservoir sampling (the 512-cap warm-up-bias fix)


class TestReservoirSample:
    def test_small_population_returned_whole(self):
        assert reservoir_sample([1, 2, 3], 512, "node") == [1, 2, 3]

    def test_deterministic_in_seed_labels(self):
        population = list(range(5_000))
        first = reservoir_sample(population, 512, "node", 3)
        again = reservoir_sample(population, 512, "node", 3)
        other = reservoir_sample(population, 512, "node", 4)
        assert first == again
        assert first != other

    def test_no_warm_up_bias(self):
        # The old cap kept samples[:512] — all warm-up.  Algorithm R
        # keeps each element with probability k/n, so roughly 3/4 of a
        # 512-sample reservoir over 2048 elements comes from the
        # post-warm-up region, and truncation would keep exactly none.
        population = list(range(2_048))
        kept = reservoir_sample(population, 512, "node", 0)
        assert len(kept) == 512
        late = sum(1 for value in kept if value >= 512)
        assert late > 256

    def test_rejects_empty_reservoir(self):
        with pytest.raises(ValueError):
            reservoir_sample([1], 0, "node")


class TestNearestRank:
    def test_matches_convention(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert nearest_rank(samples, 0.5) == 3.0
        assert nearest_rank(samples, 1.0) == 5.0
        assert nearest_rank(samples, 0.95) == 5.0

    def test_rejects_empty_and_bad_percentile(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)


# ---------------------------------------------------------------------------
# one policy module across engines


class TestOnePolicyModule:
    def test_runtime_reexport_is_the_same_objects(self):
        import repro.dist.adaptive as dist_policy
        import repro.runtime.adaptive as shared_policy

        for name in (
            "AdaptiveConfig",
            "BatchDepthController",
            "CloneGovernor",
            "derive_batch_depth",
            "nearest_rank",
            "reservoir_sample",
            "utilization_floor",
        ):
            assert getattr(shared_policy, name) is getattr(dist_policy, name)

    def test_local_engine_uses_the_shared_module(self):
        from repro.local import runtime as local_runtime

        assert local_runtime.AdaptiveConfig is AdaptiveConfig
        assert local_runtime.CloneGovernor is CloneGovernor


class TestAdaptiveConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_batch": 0},
            {"max_batch": 0},
            {"min_batch": 8, "max_batch": 4},
            {"window": 0},
            {"target_utilization": 1.0},
            {"hysteresis": -0.1},
            {"max_step": 0},
            {"smoothing": 0.0},
            {"clone_onset_decisions": 0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs)
