"""Mergeable sketches: Count-Min and HyperLogLog.

The paper cites sketches [16, 22] as a class of tasks that needs real merge
support (Section 2.3). Both sketches here merge exactly (same-shape sketches
combine losslessly into the sketch of the union stream), so a cloned
sketch-building task reconciles to precisely the un-cloned result.
"""

from __future__ import annotations

import math
from typing import Hashable, List

from repro.sim.rand import derive_seed

_MASK64 = (1 << 64) - 1


def _hash64(value: Hashable, salt: int) -> int:
    """A stable 64-bit hash independent of PYTHONHASHSEED."""
    return derive_seed(salt, value)


class CountMinSketch:
    """Count-Min sketch [Cormode & Muthukrishnan 2005].

    ``estimate`` never under-counts; the overestimate is bounded by
    ``eps * total`` with probability ``1 - delta`` for
    ``width = ceil(e / eps)`` and ``depth = ceil(ln(1 / delta))``.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 7):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total = 0

    @classmethod
    def for_error(cls, eps: float, delta: float, seed: int = 7) -> "CountMinSketch":
        width = math.ceil(math.e / eps)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=depth, seed=seed)

    def _buckets(self, item: Hashable):
        for row in range(self.depth):
            yield row, _hash64(item, self.seed + row) % self.width

    def add(self, item: Hashable, count: int = 1) -> None:
        if count < 0:
            raise ValueError("Count-Min only supports non-negative updates")
        self.total += count
        for row, col in self._buckets(item):
            self._rows[row][col] += count

    def estimate(self, item: Hashable) -> int:
        return min(self._rows[row][col] for row, col in self._buckets(item))

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        if (self.width, self.depth, self.seed) != (
            other.width,
            other.depth,
            other.seed,
        ):
            raise ValueError("can only merge identically-shaped Count-Min sketches")
        merged = CountMinSketch(self.width, self.depth, self.seed)
        merged.total = self.total + other.total
        merged._rows = [
            [a + b for a, b in zip(row_a, row_b)]
            for row_a, row_b in zip(self._rows, other._rows)
        ]
        return merged


class HyperLogLog:
    """HyperLogLog cardinality estimator [Flajolet et al. 2007].

    ``2**p`` registers; standard alpha constant with small-range (linear
    counting) correction. Merging takes the register-wise max, which equals
    the sketch of the union stream.
    """

    def __init__(self, p: int = 12, seed: int = 11):
        if not 4 <= p <= 18:
            raise ValueError(f"p must be in [4, 18], got {p}")
        self.p = p
        self.m = 1 << p
        self.seed = seed
        self._registers = bytearray(self.m)

    @property
    def _alpha(self) -> float:
        if self.m == 16:
            return 0.673
        if self.m == 32:
            return 0.697
        if self.m == 64:
            return 0.709
        return 0.7213 / (1.0 + 1.079 / self.m)

    def add(self, item: Hashable) -> None:
        h = _hash64(item, self.seed)
        index = h >> (64 - self.p)
        remainder = (h << self.p) & _MASK64
        # rank = position of the leftmost 1-bit in the remaining 64-p bits.
        rank = 1
        probe = 1 << 63
        while rank <= 64 - self.p and not remainder & probe:
            rank += 1
            probe >>= 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def cardinality(self) -> float:
        inv_sum = 0.0
        zeros = 0
        for register in self._registers:
            inv_sum += 2.0 ** -register
            if register == 0:
                zeros += 1
        estimate = self._alpha * self.m * self.m / inv_sum
        if estimate <= 2.5 * self.m and zeros:
            return self.m * math.log(self.m / zeros)
        return estimate

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        if (self.p, self.seed) != (other.p, other.seed):
            raise ValueError("can only merge identically-configured HLL sketches")
        merged = HyperLogLog(self.p, self.seed)
        merged._registers = bytearray(
            max(a, b) for a, b in zip(self._registers, other._registers)
        )
        return merged
