"""The adaptive policy surface for the simulated control plane.

One policy module serves every engine: the closed-loop batch-depth
controller and the overload-driven clone governor live in
``repro.dist.adaptive`` (engine-neutral — it imports only the analysis
layer and seeded RNG helpers), and the sim and local engines import them
from here so that a policy change cannot diverge between the modeled
Eq. 1 heuristic and the real fetch pipeline.  Parity between this
surface and the dist one is pinned by ``tests/test_adaptive.py``.
"""

from repro.dist.adaptive import (
    AdaptiveConfig,
    BatchDepthController,
    CloneGovernor,
    derive_batch_depth,
    nearest_rank,
    reservoir_sample,
    utilization_floor,
)

__all__ = [
    "AdaptiveConfig",
    "BatchDepthController",
    "CloneGovernor",
    "derive_batch_depth",
    "nearest_rank",
    "reservoir_sample",
    "utilization_floor",
]
