"""Figures 7 & 8: the cloning x data-spreading ablation.

ClickLog on 8 machines with 80GB (10GB/machine), four configurations:

1. cloning off, local data      3. cloning on, local data
2. cloning off, spread data     4. cloning on, spread data

"Local data" places the initial input on the storage node co-located with
the (single) phase-1 task and writes every worker's output to its own
node; "spread" is the Hurricane default. Figure 7 reports Phase 1 (no
skew — spreading dominates), Figure 8 reports Phase 2 (skew — cloning and
spreading both matter).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.apps.clicklog import build_clicklog_sim
from repro.experiments.common import format_rows, full_scale, run_sim
from repro.units import GB

SKEWS_FULL = (0.0, 0.2, 0.5, 0.8, 1.0)
SKEWS_QUICK = (0.0, 1.0)
MACHINES = 8
INPUT_BYTES = 80 * GB
#: The machine that holds the input (and all outputs) in local-data mode.
LOCAL_HOME = 0

CONFIGS = (
    ("c=off,local", False, False),
    ("c=off,spread", False, True),
    ("c=on,local", True, False),
    ("c=on,spread", True, True),
)


def run_fig7_fig8(
    full: Optional[bool] = None,
    skews: Optional[Sequence[float]] = None,
    input_bytes: int = INPUT_BYTES,
) -> List[dict]:
    sweep = skews or (SKEWS_FULL if full_scale(full) else SKEWS_QUICK)
    rows = []
    for label, cloning, spread in CONFIGS:
        for skew in sweep:
            app, inputs = build_clicklog_sim(
                input_bytes,
                skew=skew,
                placement="spread" if spread else LOCAL_HOME,
            )
            report = run_sim(
                app,
                inputs,
                machines=MACHINES,
                overrides={
                    "cloning_enabled": cloning,
                    "spread_data": spread,
                },
            )
            phases = {n: s[1] - s[0] for n, s in report.phases.items()}
            rows.append(
                {
                    "config": label,
                    "skew": skew,
                    "phase1_s": phases.get("phase1", 0.0),  # Figure 7
                    "phase2_s": phases.get("phase2", 0.0),  # Figure 8
                    "runtime_s": report.runtime,
                    "clones": report.clones_granted,
                }
            )
    return rows


def main() -> None:
    print(format_rows(run_fig7_fig8()))


if __name__ == "__main__":
    main()
