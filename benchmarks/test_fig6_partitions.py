"""Figure 6: Hurricane vs HurricaneNC over partition counts (32GB, s=1).

Shape checks: at coarse partitioning, cloning beats static partitions on
the skewed phase (Phase 2) by a wide margin and on total runtime;
HurricaneNC stays under the Amdahl bound; very fine partitioning degrades
Phase 1 for both systems (scheduling/storage overheads of tiny tasks).
"""

from conftest import show

from repro.experiments.fig6 import run_fig6


def test_fig6(once):
    rows = once(run_fig6)
    show("Figure 6 — partitions sweep, Hurricane vs HurricaneNC", rows)
    by_key = {(r["system"], r["partitions"]): r for r in rows}
    parts = sorted({r["partitions"] for r in rows})
    coarse, fine = parts[0], parts[-1]

    nc, hurricane = by_key[("HurricaneNC", coarse)], by_key[("Hurricane", coarse)]
    assert hurricane["phase2_s"] < 0.6 * nc["phase2_s"], "cloning must fix phase 2"
    assert hurricane["runtime_s"] < nc["runtime_s"]
    for row in rows:
        assert row["normalized"] < row["amdahl_bound"] * 1.1

    # Tiny partitions hurt phase 1 for both systems.
    assert by_key[("HurricaneNC", fine)]["phase1_s"] > by_key[
        ("HurricaneNC", coarse)
    ]["phase1_s"]
    assert by_key[("Hurricane", fine)]["phase1_s"] > by_key[
        ("Hurricane", coarse)
    ]["phase1_s"]
