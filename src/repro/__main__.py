"""``python -m repro`` — experiments, tracing, chaos, and benchmarks.

Subcommands:

- ``python -m repro <experiment> [--full]`` reproduces a table or figure
  (see :mod:`repro.experiments.runner`; ``all`` runs everything).
- ``python -m repro trace <example>`` runs a workload with tracing on and
  writes a Chrome ``trace_event`` JSON.
- ``python -m repro chaos --seed S --runs N`` fuzzes the runtime with
  seeded fault plans and checks cross-layer invariants.
- ``python -m repro bench [--quick]`` benchmarks the local and dist
  engines and writes ``BENCH_dist.json``.
"""

import difflib
import sys

_USAGE = """\
usage: python -m repro <command> [options]

commands:
  <experiment> [--full]   reproduce one table/figure ({experiments}, or 'all')
  trace <example>         run a workload with tracing, write trace_event JSON
  chaos [--seed S]        seeded fault-injection fuzzing of the runtime
  bench [--quick]         benchmark local vs dist engines -> BENCH_dist.json

run 'python -m repro <command> --help' for command options.
"""


def _experiment_names():
    from repro.experiments.runner import _registry

    return sorted(_registry())


def _usage() -> str:
    return _USAGE.format(experiments=", ".join(_experiment_names()))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(_usage())
        return 0
    command = argv[0]
    if command == "trace":
        from repro.analysis.trace_report import main as trace_main

        return trace_main(argv[1:])
    if command == "chaos":
        from repro.chaos import main as chaos_main

        return chaos_main(argv[1:])
    if command == "bench":
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    experiments = _experiment_names()
    if command.startswith("-") or command not in experiments + ["all"]:
        known = experiments + ["all", "trace", "chaos", "bench"]
        close = difflib.get_close_matches(command, known, n=3)
        hint = f" (did you mean: {', '.join(close)}?)" if close else ""
        print(f"error: unknown command {command!r}{hint}\n", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2
    from repro.experiments.runner import main as runner_main

    return runner_main(argv)


if __name__ == "__main__":
    sys.exit(main())
