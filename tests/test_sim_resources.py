"""Tests for Resource, Store, and the processor-sharing BandwidthServer."""

import pytest

from repro.errors import SimulationError
from repro.sim import BandwidthServer, Environment, Resource, Store


def _finish_times(env, bw, amounts, starts=None):
    """Run one flow per amount; return completion times."""
    starts = starts or [0.0] * len(amounts)
    times = {}

    def flow(env, index, start, amount):
        yield env.timeout(start)
        yield bw.transfer(amount)
        times[index] = env.now

    for i, (amount, start) in enumerate(zip(amounts, starts)):
        env.process(flow(env, i, start, amount))
    env.run()
    return [times[i] for i in range(len(amounts))]


class TestBandwidthServer:
    def test_single_flow_full_rate(self):
        env = Environment()
        bw = BandwidthServer(env, rate=100.0)
        assert _finish_times(env, bw, [200]) == [2.0]

    def test_two_flows_share_equally(self):
        env = Environment()
        bw = BandwidthServer(env, rate=100.0)
        assert _finish_times(env, bw, [100, 100]) == [2.0, 2.0]

    def test_unequal_flows(self):
        env = Environment()
        bw = BandwidthServer(env, rate=100.0)
        # 50 and 150: both at 50/s until t=1 (short done), then long at 100/s.
        assert _finish_times(env, bw, [50, 150]) == [1.0, 2.0]

    def test_late_arrival_shares(self):
        env = Environment()
        bw = BandwidthServer(env, rate=100.0)
        times = _finish_times(env, bw, [100, 50], starts=[0.0, 0.5])
        assert times == [pytest.approx(1.5), pytest.approx(1.5)]

    def test_per_flow_cap(self):
        env = Environment()
        cpu = BandwidthServer(env, rate=4.0, per_flow_cap=1.0)
        # One thread cannot use more than one core: 2 core-s takes 2 s.
        assert _finish_times(env, cpu, [2.0]) == [2.0]

    def test_capped_flows_below_capacity_dont_contend(self):
        env = Environment()
        cpu = BandwidthServer(env, rate=4.0, per_flow_cap=1.0)
        assert _finish_times(env, cpu, [1.0, 1.0, 1.0]) == [1.0, 1.0, 1.0]

    def test_capped_flows_above_capacity_share(self):
        env = Environment()
        cpu = BandwidthServer(env, rate=2.0, per_flow_cap=1.0)
        # 4 threads on 2 cores: each runs at 0.5 core.
        assert _finish_times(env, cpu, [1.0] * 4) == [2.0] * 4

    def test_zero_transfer_completes_immediately(self):
        env = Environment()
        bw = BandwidthServer(env, rate=10.0)
        event = bw.transfer(0)
        assert event.triggered

    def test_demand_and_utilization(self):
        env = Environment()
        cpu = BandwidthServer(env, rate=4.0, per_flow_cap=1.0)
        for _ in range(8):
            cpu.transfer(100.0)
        assert cpu.demand() == pytest.approx(2.0)
        assert cpu.utilization() == pytest.approx(1.0)

    def test_delivered_work_accounting(self):
        env = Environment()
        bw = BandwidthServer(env, rate=100.0)
        env.process(_one(env, bw, 300))
        env.run()
        assert bw.delivered_work() == pytest.approx(300.0)

    def test_abort_all_drops_flows(self):
        env = Environment()
        bw = BandwidthServer(env, rate=10.0)
        bw.transfer(1000)
        assert bw.abort_all() == 1
        assert bw.active_flows == 0

    def test_invalid_rate(self):
        env = Environment()
        with pytest.raises(ValueError):
            BandwidthServer(env, rate=0)

    def test_many_equal_flows_finish_together(self):
        env = Environment()
        bw = BandwidthServer(env, rate=7.0)
        times = _finish_times(env, bw, [10.0] * 13)
        assert all(t == pytest.approx(13 * 10 / 7) for t in times)


def _one(env, bw, amount):
    yield bw.transfer(amount)


class TestResource:
    def test_fifo_grant(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(env, name, hold):
            yield res.request()
            order.append((name, env.now))
            yield env.timeout(hold)
            res.release()

        env.process(user(env, "a", 2))
        env.process(user(env, "b", 1))
        env.run()
        assert order == [("a", 0.0), ("b", 2.0)]

    def test_capacity_respected(self):
        env = Environment()
        res = Resource(env, capacity=2)
        res.request()
        res.request()
        third = res.request()
        assert not third.triggered
        res.release()
        env.run()
        assert third.triggered

    def test_release_idle_raises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_busy_seconds(self):
        env = Environment()
        res = Resource(env, capacity=2)

        def user(env):
            yield res.request()
            yield env.timeout(5)
            res.release()

        env.process(user(env))
        env.process(user(env))
        env.run()
        assert res.busy_seconds() == pytest.approx(10.0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        event = store.get()
        assert event.triggered and event.value == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        result = []

        def getter(env):
            item = yield store.get()
            result.append((env.now, item))

        def putter(env):
            yield env.timeout(3)
            store.put("y")

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert result == [(3.0, "y")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        assert [store.get().value for _ in range(3)] == [1, 2, 3]

    def test_drain(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert store.drain() == [1, 2]
        assert len(store) == 0
