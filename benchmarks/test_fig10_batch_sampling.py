"""Figure 10: batch sampling factor sweep (b = 1..32).

Shape checks: prefetching more than one chunk materially improves Phase-1
runtime (the paper reports ~33% at b=10); b=10 is at or near the sweet
spot; over-prefetch (b=32) gives no further win.
"""

from conftest import show

from repro.experiments.fig10 import run_fig10


def test_fig10(once):
    rows = once(run_fig10)
    show("Figure 10 — batch sampling factor", rows)
    by_b = {row["b"]: row["normalized_to_b1"] for row in rows}
    assert by_b[1] == 1.0
    # b=10 is much better than b=1 (paper: ~33% faster).
    assert by_b[10] <= 0.8
    # The curve is monotone-ish down to the sweet spot.
    assert by_b[2] <= by_b[1] + 0.02
    assert by_b[10] <= by_b[2] + 0.02
    # Over-prefetching does not keep helping much.
    assert by_b[32] >= by_b[10] - 0.10
