"""Bag-sharded storage: parity, routed clients, and exactly-once removal.

The dist engine must produce byte-identical sinks on every (shards,
workers) combination — the ShardRouter moves bags between server
processes, never changes what is computed. These tests sweep the
shards x workers grid against the single-threaded LocalRuntime baseline,
force mid-task clones across shards, and check that two clones racing
``remove_batch`` on the same shard still hand each chunk to exactly one
of them.
"""

import pytest

from repro.apps import build_clicklog_local, build_hashjoin_local
from repro.apps.calibration import build_calibration_local, calibration_seeds
from repro.dist import DistRuntime, ShardRouter
from repro.dist.client import ShardedBagStore
from repro.local import LocalRuntime

from tests.test_dist_runtime import (
    REGIONS,
    clicklog_baseline,
    clicklog_counts,
    clicklog_records,
    hashjoin_inputs,
    hashjoin_rows,
)

SHARD_COUNTS = [1, 2, 4]


class TestShardedParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("workers", [1, 3])
    def test_clicklog_matches_local(self, shards, workers):
        records = clicklog_records()
        expected = clicklog_baseline(records)
        result = DistRuntime(
            build_clicklog_local(regions=REGIONS),
            workers=workers,
            shards=shards,
            chunk_size=2048,
        ).run({"clicklog": records}, timeout=120)
        assert clicklog_counts(result) == expected
        assert result.shards == shards
        assert len(result.shard_stats) == shards

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_hashjoin_matches_local(self, shards):
        inputs = hashjoin_inputs()
        expected = hashjoin_rows(
            LocalRuntime(
                build_hashjoin_local(partitions=2), workers=1, cloning=False
            ).run(dict(inputs), timeout=120)
        )
        result = DistRuntime(
            build_hashjoin_local(partitions=2),
            workers=2,
            shards=shards,
            records_per_chunk=64,
        ).run(dict(inputs), timeout=120)
        assert hashjoin_rows(result) == expected
        assert expected

    @pytest.mark.parametrize("shards", [2, 4])
    def test_calibration_matches_local(self, shards):
        seeds = calibration_seeds(120)
        expected = (
            LocalRuntime(build_calibration_local(rounds=20), workers=1)
            .run({"seeds": seeds}, timeout=60)
            .value("checksum")
        )
        result = DistRuntime(
            build_calibration_local(rounds=20),
            workers=2,
            shards=shards,
            records_per_chunk=16,
        ).run({"seeds": seeds}, timeout=60)
        assert result.value("checksum") == expected

    def test_every_shard_serves_traffic(self):
        # With enough bags, the pseudorandom spread leaves no shard idle —
        # the whole point of making Eq. 1's m real.
        records = clicklog_records()
        result = DistRuntime(
            build_clicklog_local(regions=REGIONS),
            workers=2,
            shards=2,
            chunk_size=2048,
        ).run({"clicklog": records}, timeout=120)
        for stats in result.shard_stats:
            served = sum(
                count for op, count in stats.items() if op != "shard"
            )
            assert served > 0, f"shard {stats.get('shard')} served no requests"


class TestShardedCloning:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_forced_mid_task_clones_keep_parity(self, shards):
        records = clicklog_records()
        expected = clicklog_baseline(records)
        result = DistRuntime(
            build_clicklog_local(regions=REGIONS),
            workers=4,
            shards=shards,
            chunk_size=1024,
            forced_clones={"phase1": 2},
        ).run({"clicklog": records}, timeout=120)
        assert clicklog_counts(result) == expected
        assert result.clone_counts["phase1"] >= 3

    @pytest.mark.parametrize("shards", [2, 4])
    def test_racing_clones_remove_each_chunk_exactly_once(self, shards):
        # Two forced clones and the original all stream the same input bag
        # on one shard; server-side serialization must hand out each chunk
        # exactly once, or the sink counts would overshoot the baseline.
        records = clicklog_records()
        expected = clicklog_baseline(records)
        result = DistRuntime(
            build_clicklog_local(regions=REGIONS),
            workers=3,
            shards=shards,
            chunk_size=512,  # many chunks -> long race window
            forced_clones={"phase1": 2},
            snapshot_bags="all",
        ).run({"clicklog": records}, timeout=120)
        assert clicklog_counts(result) == expected
        # The family processed the bag's chunks once, together: total
        # chunks removed across shards equals chunks inserted (no chunk
        # vanished, none was double-served).
        stats = result.storage_stats
        assert stats["chunks_removed"] <= stats["insert"]
        filtered = sum(
            len(result.records(f"region.{name}")) for name in REGIONS
        )
        assert filtered == len(
            [ip for ip in records if (ip >> 26) < len(REGIONS)]
        )


class TestShardedRuntimeSurface:
    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            DistRuntime(build_clicklog_local(regions=REGIONS), shards=0)
        with pytest.raises(ValueError):
            DistRuntime(
                build_clicklog_local(regions=REGIONS), shards=2, kill_shard=2
            )

    def test_per_shard_latency_percentiles(self):
        records = clicklog_records()
        result = DistRuntime(
            build_clicklog_local(regions=REGIONS),
            workers=2,
            shards=2,
            chunk_size=2048,
        ).run({"clicklog": records}, timeout=120)
        per_shard = result.per_shard_latency_percentiles()
        assert per_shard  # at least one shard streamed chunks
        total = 0
        for shard, summary in per_shard.items():
            assert 0 <= shard < 2
            assert summary["count"] > 0
            assert summary["p50_ms"] <= summary["p99_ms"] <= summary["max_ms"]
            total += summary["count"]
        # Pooled percentiles summarize exactly the per-shard samples.
        assert total == result.chunk_latency_percentiles()["count"]

    def test_sharded_store_routes_and_fans_out(self):
        # Regression for the single-server assumptions fixed alongside the
        # sharding work: remaining_many must split per shard and merge, and
        # stats must report per-shard (not whichever server answered).
        router = ShardRouter(3)
        bag_ids = [f"bag.{i}" for i in range(12)]
        partition = router.partition(bag_ids)
        assert sorted(b for group in partition.values() for b in group) == sorted(
            bag_ids
        )
        for shard, group in partition.items():
            for bag_id in group:
                assert router.home(bag_id) == shard

    def test_single_shard_matches_pre_sharding_surface(self):
        # shards=1 is the old topology: one server process, aggregate
        # op counters identical to the per-shard entry (gauges like the
        # RSS high-water are per-shard only, never summed).
        records = clicklog_records(2000)
        result = DistRuntime(
            build_clicklog_local(regions=REGIONS),
            workers=2,
            shards=1,
            chunk_size=2048,
        ).run({"clicklog": records}, timeout=120)
        assert len(result.shard_stats) == 1
        gauges = {"shard", "rss_hwm_kb", "resident_peak_bytes"}
        only = {
            op: count
            for op, count in result.shard_stats[0].items()
            if op not in gauges
        }
        assert only == result.storage_stats
