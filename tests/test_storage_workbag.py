"""Tests for work bags and the done log."""

from repro.cluster import Cluster, paper_cluster
from repro.sim import Environment
from repro.storage.workbag import DoneLog, WorkBag, WorkBags


def _setup(machines=4):
    env = Environment()
    cluster = Cluster(env, paper_cluster(machines))
    bag = WorkBag(env, cluster, "ready", list(range(machines)))
    return env, bag


def _run(env, gen):
    return env.run(until=env.process(gen))


def test_insert_and_remove():
    env, bag = _setup()
    _run(env, bag.insert("task-1"))
    assert len(bag) == 1
    item = _run(env, bag.try_remove())
    assert item == "task-1"
    assert len(bag) == 0


def test_remove_empty_returns_none():
    env, bag = _setup()
    assert _run(env, bag.try_remove()) is None


def test_remove_with_filter():
    env, bag = _setup()
    for i in range(6):
        _run(env, bag.insert({"id": i, "target": i % 2}))
    item = _run(env, bag.try_remove(lambda it: it["target"] == 1))
    assert item["target"] == 1
    assert len(bag) == 5


def test_remove_filter_no_match():
    env, bag = _setup()
    _run(env, bag.insert({"target": 7}))
    assert _run(env, bag.try_remove(lambda it: it["target"] == 3)) is None
    assert len(bag) == 1


def test_scan_non_destructive():
    env, bag = _setup()
    for i in range(5):
        _run(env, bag.insert(i))
    matches = _run(env, bag.scan(lambda it: it >= 3))
    assert sorted(matches) == [3, 4]
    assert len(bag) == 5


def test_remove_if_destructive():
    env, bag = _setup()
    for i in range(5):
        _run(env, bag.insert(i))
    removed = _run(env, bag.remove_if(lambda it: it % 2 == 0))
    assert sorted(removed) == [0, 2, 4]
    assert len(bag) == 2


def test_discard_removes_one():
    env, bag = _setup()
    for i in range(3):
        _run(env, bag.insert(i))
    item = _run(env, bag.discard(lambda it: it == 1))
    assert item == 1
    assert len(bag) == 2
    assert _run(env, bag.discard(lambda it: it == 99)) is None


def test_items_spread_across_shards():
    env, bag = _setup(machines=8)
    for i in range(200):
        _run(env, bag.insert(i))
    non_empty = sum(1 for shard in bag._shards.values() if shard)
    assert non_empty >= 6  # pseudorandom placement touches most nodes


def test_done_log_append_and_offset_reads():
    env = Environment()
    cluster = Cluster(env, paper_cluster(2))
    log = DoneLog(env, cluster)

    def feed(env):
        for i in range(5):
            yield from log.append(f"t{i}")

    env.run(until=env.process(feed(env)))

    def read(env):
        entries, offset = yield from log.read_from(0)
        more, offset = yield from log.read_from(offset)
        return entries, more, offset

    entries, more, offset = env.run(until=env.process(read(env)))
    assert entries == [f"t{i}" for i in range(5)]
    assert more == [] and offset == 5


def test_done_log_replay_from_zero():
    """Master recovery re-reads the whole log from offset 0."""
    env = Environment()
    cluster = Cluster(env, paper_cluster(2))
    log = DoneLog(env, cluster)

    def scenario(env):
        yield from log.append("a")
        _first, offset = yield from log.read_from(0)
        yield from log.append("b")
        replay, _ = yield from log.read_from(0)
        return replay

    assert env.run(until=env.process(scenario(env))) == ["a", "b"]


def test_workbags_triple():
    env = Environment()
    cluster = Cluster(env, paper_cluster(2))
    bags = WorkBags(env, cluster, [0, 1])
    assert bags.ready.name == "ready"
    assert bags.running.name == "running"
    assert isinstance(bags.done, DoneLog)
