"""Unit tests for the Spark-AQE-style adaptive baseline."""

import pytest

from repro.baselines.aqe import AQEConfig, AQEEngine, SplittableTask
from repro.baselines.engine import Stage, StageTask
from repro.cluster.spec import paper_cluster
from repro.units import GB, MB


def _stage(tasks):
    return Stage("join", "reduce", tuple(tasks))


def _uniform(n=8, size=64 * MB):
    return [
        SplittableTask(i, size, cpu_seconds=1.0, replicated_bytes=size / 2)
        for i in range(n)
    ]


class TestAdaptation:
    def test_uniform_stage_untouched(self):
        engine = AQEEngine(paper_cluster(4))
        adapted = engine._adapt(_stage(_uniform()))
        assert len(adapted.tasks) == 8
        assert engine.splits == 0

    def test_probe_side_split(self):
        tasks = _uniform()
        tasks.append(
            SplittableTask(
                99,
                2 * GB,
                cpu_seconds=60.0,
                replicated_bytes=32 * MB,  # small build side
                replicated_cpu_seconds=1.0,
            )
        )
        engine = AQEEngine(paper_cluster(4))
        adapted = engine._adapt(_stage(tasks))
        assert engine.splits > 0
        assert len(adapted.tasks) > 9
        # Work is conserved: total cpu unchanged.
        assert sum(t.cpu_seconds for t in adapted.tasks) == pytest.approx(68.0)

    def test_build_side_split_replicates_probe(self):
        tasks = _uniform()
        tasks.append(
            SplittableTask(
                99,
                2 * GB + 64 * MB,
                cpu_seconds=60.0,
                replicated_bytes=2 * GB,  # the build side is the skewed one
                replicated_cpu_seconds=50.0,
            )
        )
        engine = AQEEngine(paper_cluster(4))
        adapted = engine._adapt(_stage(tasks))
        subtasks = [t for t in adapted.tasks if t.index >= 100_000]
        assert len(subtasks) >= 2
        # Every sub-task re-reads the full probe side (64 MB) plus its slice.
        for task in subtasks:
            assert task.input_bytes >= 64 * MB

    def test_non_splittable_tasks_never_split(self):
        tasks = [StageTask(i, 64 * MB, cpu_seconds=1.0) for i in range(8)]
        tasks.append(StageTask(99, 4 * GB, cpu_seconds=60.0))
        engine = AQEEngine(paper_cluster(4))
        adapted = engine._adapt(_stage(tasks))
        assert len(adapted.tasks) == 9
        assert engine.splits == 0

    def test_map_stages_untouched(self):
        stage = Stage("map", "map", tuple(_uniform()))
        engine = AQEEngine(paper_cluster(4))
        assert engine._adapt(stage) is stage


class TestEndToEnd:
    def test_aqe_beats_plain_on_splittable_straggler(self):
        tasks = _uniform(n=15, size=32 * MB)
        tasks.append(
            SplittableTask(
                99,
                1 * GB + 32 * MB,
                cpu_seconds=120.0,
                replicated_bytes=1 * GB,
                replicated_cpu_seconds=100.0,
                spillable=True,
            )
        )
        from repro.baselines.engine import BaselineEngine, SPARK_PROFILE

        plain = BaselineEngine(SPARK_PROFILE, paper_cluster(8)).run(
            "j", [_stage(tasks)], timeout=3600
        )
        aqe = AQEEngine(paper_cluster(8)).run("j", [_stage(tasks)], timeout=3600)
        assert aqe.runtime < 0.5 * plain.runtime

    def test_threshold_config(self):
        tasks = _uniform()
        tasks.append(
            SplittableTask(99, 512 * MB, cpu_seconds=8.0, replicated_bytes=32 * MB)
        )
        lax = AQEEngine(paper_cluster(4), config=AQEConfig(skew_factor=1000.0))
        lax._adapt(_stage(tasks))
        assert lax.splits == 0
