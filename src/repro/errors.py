"""Exception taxonomy for the Hurricane reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base type. Subsystem-specific failures get their own
subclasses; the simulated failure modes that the paper's evaluation exercises
(Spark OOM crashes, job timeouts) have dedicated types so the benchmark
harnesses can distinguish "crashed" from "did not finish" exactly the way
Figure 12 does (negative bar = crash, full bar = >1h timeout).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """An application graph is malformed (cycle, dangling bag, duplicate id)."""


class BagError(ReproError):
    """Illegal operation on a data or work bag."""


class BagSealedError(BagError):
    """Insert attempted on a bag that has been sealed (its producers finished)."""


class SerdeError(ReproError):
    """A chunk could not be encoded or decoded."""


class ChunkOverflowError(SerdeError):
    """A single record does not fit in one chunk (records may not span chunks)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulingError(ReproError):
    """The runtime could not schedule a task (e.g. unknown task id)."""


class WorkerCrash(ReproError):
    """A (simulated) compute-node worker crashed while executing a task."""


class TaskMemoryExceeded(ReproError):
    """A baseline task exceeded its per-task memory limit (Spark-style OOM)."""

    def __init__(self, task: str, needed_bytes: int, limit_bytes: int):
        super().__init__(
            f"task {task!r} needs {needed_bytes} bytes but the per-task "
            f"limit is {limit_bytes} bytes"
        )
        self.task = task
        self.needed_bytes = needed_bytes
        self.limit_bytes = limit_bytes


class JobTimeout(ReproError):
    """A job did not complete within the experiment's wall-clock budget."""

    def __init__(self, job: str, budget_seconds: float):
        super().__init__(f"job {job!r} exceeded its budget of {budget_seconds}s")
        self.job = job
        self.budget_seconds = budget_seconds


class JobCrashed(ReproError):
    """A whole baseline job aborted (e.g. repeated task OOMs)."""

    def __init__(self, job: str, reason: str):
        super().__init__(f"job {job!r} crashed: {reason}")
        self.job = job
        self.reason = reason


class JournalCorrupt(ReproError):
    """A write-ahead journal is damaged *inside* its record sequence.

    A torn tail (the writer died mid-append) is legal WAL state and is
    silently dropped, because a record that never fully landed describes
    an effect that never happened. A bad frame with intact frames
    *after* it is different: the effects of those later records did
    happen, so stopping early would silently replay a prefix of history
    and resurrect already-consumed work. Recovery must fail loudly
    instead of proceeding from a truncated past.
    """

    def __init__(self, path: str, offset: int, reason: str):
        super().__init__(
            f"journal {path!r} corrupt at offset {offset}: {reason} "
            f"(intact frames follow, so this is not a torn tail)"
        )
        self.path = path
        self.offset = offset
        self.reason = reason


class RemoteTaskError(ReproError):
    """A task function raised in a distributed worker process.

    Carries the worker-side exception rendered as text (type, message, and
    traceback) because arbitrary exception objects do not round-trip
    reliably across process boundaries.
    """

    def __init__(self, node_id: str, error: str, remote_traceback: str = ""):
        super().__init__(f"node {node_id!r} failed in worker: {error}")
        self.node_id = node_id
        self.error = error
        self.remote_traceback = remote_traceback


class ReplicationError(ReproError):
    """Not enough live replicas to serve a bag after storage failures."""


class FetchTimeout(ReproError):
    """A chunk fetcher produced nothing within the caller's timeout.

    The documented ``get`` contract is "a chunk, or ``None`` at end of
    bag" — a timeout is neither, and used to escape as the stdlib's
    bare ``queue.Empty``, which callers had to know was an
    implementation detail. This type makes the timeout a first-class
    protocol signal: it promises no chunk was lost (the request is
    still in flight or will be retried), so polling callers just try
    again after their housekeeping.
    """


class StorageNodeDown(ReproError):
    """An in-flight storage request was lost because its server crashed.

    Clients catch this and re-issue the request; with replication the retry
    is served by a backup replica (Section 4.4).
    """


class NotPrimary(ReproError):
    """A replicated storage shard refused to serve a bag it does not own.

    Destructive reads (chunk removal) and snapshot reads must be served by
    exactly one replica at a time — the *primary* — or two clients could
    consume the same chunk from two copies. Each shard gates those ops on
    the master-pushed demotion-epoch vector; a request landing on a
    backup is refused with this error, whose message carries the shard's
    current epoch vector (``repr`` of a ``{shard: epoch}`` dict) so the
    client can adopt it and re-route to the real primary.
    """

