"""Client side of the storage protocol: bag proxies and batch sampling.

:class:`RemoteBagStore` mimics the
:class:`~repro.storage.local.LocalBagStore` surface over one storage
connection, so the engine-agnostic helpers in :mod:`repro.engine.common`
(and the shared :class:`~repro.local.context.TaskContext`) work unchanged
in worker and master processes.

:class:`BatchChunkFetcher` is the paper's batch-sampling access path
(Section 4.2, Eq. 1): instead of one round trip per chunk, a prefetch
thread on its own connection requests up to ``b`` chunks per RPC and
keeps a buffer of ``b`` chunks ahead of the consuming task — while the
task burns CPU on buffered chunks, the next batch is already in flight,
hiding the chunk-service latency that Eq. 1 charges per request.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, List, Optional, Tuple

import repro.errors as errors_mod
from repro.dist.protocol import DIST_STORAGE_POLICY, StorageAddress, connect_with_retry
from repro.errors import StorageNodeDown
from repro.storage.policy import StorageConfig

#: Sentinel queued by the fetcher when the bag is drained and sealed.
_EOF = object()

#: Poll interval while a streamed bag is empty but not yet sealed (only
#: possible for bags filled concurrently; scheduled tasks stream sealed
#: bags, so this path is a safety net, not a hot loop).
_UNSEALED_POLL_SECONDS = 0.005


class RemoteBag:
    """Proxy for one bag hosted by the storage server."""

    def __init__(self, store: "RemoteBagStore", bag_id: str):
        self.bag_id = bag_id
        self._store = store

    def insert(self, chunk: Any) -> None:
        self._store.call("insert", self.bag_id, chunk)

    def remove(self) -> Optional[Any]:
        chunk, _sealed = self._store.call("remove", self.bag_id)
        return chunk

    def remove_batch(self, count: int) -> Tuple[List[Any], bool]:
        return self._store.call("remove_batch", self.bag_id, count)

    def read_all(self) -> List[Any]:
        return self._store.call("read_all", self.bag_id)

    def seal(self) -> None:
        self._store.call("seal", self.bag_id)

    def remaining(self) -> int:
        return self._store.call("remaining", self.bag_id)

    def rewind(self) -> None:
        self._store.call("rewind", self.bag_id)

    def discard(self) -> None:
        self._store.call("discard", self.bag_id)

    def size(self) -> int:
        return self._store.call("size", self.bag_id)


class RemoteBagStore:
    """A LocalBagStore-compatible facade over one storage connection.

    Thread-safe: a lock serializes the send/recv pair. Connection
    establishment retries per the storage policy; a failure *mid-call*
    raises :class:`~repro.errors.StorageNodeDown` instead of retrying,
    because mutating ops (insert, remove_batch) are not idempotent.
    """

    def __init__(
        self,
        address: StorageAddress,
        authkey: bytes,
        client_id: str,
        policy: StorageConfig = DIST_STORAGE_POLICY,
    ):
        self.address = address
        self.authkey = authkey
        self.client_id = client_id
        self.policy = policy
        self._conn = None
        self._lock = threading.Lock()

    def _ensure_conn(self):
        if self._conn is None:
            self._conn = connect_with_retry(self.address, self.authkey, self.policy)
            self._conn.send(("hello", self.client_id))
            status, payload = self._conn.recv()
            if status != "ok":
                raise StorageNodeDown(f"storage handshake failed: {payload}")
        return self._conn

    def call(self, op: str, *args: Any) -> Any:
        with self._lock:
            conn = self._ensure_conn()
            try:
                conn.send((op,) + args)
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                self._conn = None
                raise StorageNodeDown(
                    f"storage server unreachable during {op!r}: {exc}"
                ) from exc
            if status == "err":
                exc_name, message = payload
                exc_type = getattr(errors_mod, exc_name, None)
                if exc_type is None or not isinstance(exc_type, type):
                    exc_type = errors_mod.ReproError
                raise exc_type(message)
            return payload

    # -- LocalBagStore surface ------------------------------------------------

    def ensure(self, bag_id: str) -> RemoteBag:
        return RemoteBag(self, bag_id)

    def get(self, bag_id: str) -> RemoteBag:
        # Server-side ops auto-ensure; get/ensure are aliases here.
        return RemoteBag(self, bag_id)

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
                self._conn = None


class BatchChunkFetcher:
    """Prefetching chunk client for one stream-input bag.

    A daemon thread on a dedicated connection issues ``remove_batch``
    RPCs of ``batch`` chunks and feeds a bounded queue; :meth:`get`
    returns the next chunk or ``None`` at end-of-bag. Per-RPC latency
    samples (seconds) accumulate in :attr:`latencies` for the benchmark's
    chunk-service percentiles.
    """

    def __init__(
        self,
        address: StorageAddress,
        authkey: bytes,
        client_id: str,
        bag_id: str,
        batch: int,
        policy: StorageConfig = DIST_STORAGE_POLICY,
    ):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.bag_id = bag_id
        self.batch = batch
        self.latencies: List[float] = []
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=batch)
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._store = RemoteBagStore(address, authkey, client_id, policy)
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"fetch-{bag_id}"
        )
        self._thread.start()

    def _run(self) -> None:
        bag = self._store.get(self.bag_id)
        try:
            while not self._stop.is_set():
                started = time.perf_counter()
                chunks, sealed = bag.remove_batch(self.batch)
                self.latencies.append(time.perf_counter() - started)
                if not chunks:
                    if sealed:
                        self._put(_EOF)
                        return
                    time.sleep(_UNSEALED_POLL_SECONDS)
                    continue
                for chunk in chunks:
                    self._put(chunk)
        except BaseException as exc:
            self._error = exc
            self._put(_EOF)
        finally:
            self._store.close()

    def _put(self, item: Any) -> None:
        # Bounded put that gives up when the consumer stopped listening.
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next chunk, or ``None`` once the bag is drained and sealed."""
        item = self._queue.get(timeout=timeout)
        if item is _EOF:
            if self._error is not None:
                raise self._error
            return None
        return item

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
