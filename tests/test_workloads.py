"""Tests for the workload generators."""

import pytest

from repro.workloads import (
    REGION_COUNT,
    RmatSpec,
    generate_clicklog,
    generate_rmat_edges,
    generate_relation,
    geolocate,
    imbalance,
    largest_share,
    region_name,
    region_of_ip,
    rmat_partition_profile,
    zipf_weights,
)
from repro.workloads.clicklog_data import exact_distinct_counts
from repro.workloads.relations import join_reference
from repro.workloads.rmat import rmat_transfer_matrix


class TestZipf:
    def test_uniform_at_s0(self):
        weights = zipf_weights(64, 0.0)
        assert all(w == pytest.approx(1 / 64) for w in weights)

    def test_weights_normalized(self):
        for s in (0.2, 0.5, 0.8, 1.0):
            assert sum(zipf_weights(64, s)) == pytest.approx(1.0)

    def test_paper_imbalance_ladder(self):
        """The reported 1x / 2.3x / 8x / 28x / 64x ladder is 64**s."""
        expected = {0.0: 1.0, 0.2: 2.3, 0.5: 8.0, 0.8: 28.0, 1.0: 64.0}
        for s, target in expected.items():
            measured = imbalance(zipf_weights(64, s))
            assert measured == pytest.approx(64 ** s, rel=1e-9)
            assert measured == pytest.approx(target, rel=0.01)

    def test_largest_share_near_paper(self):
        # Paper quotes 19.6%; 64 rank-weighted regions give 21.1%.
        assert largest_share(zipf_weights(64, 1.0)) == pytest.approx(0.211, abs=0.005)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(4, -1.0)


class TestRangePartitionWeights:
    def test_uniform_at_s0(self):
        from repro.workloads.zipf import range_partition_weights

        weights = range_partition_weights(1 << 20, 32, 0.0)
        assert all(w == pytest.approx(1 / 32, rel=1e-6) for w in weights)

    def test_head_absorbs_mass_at_s1(self):
        from repro.workloads.zipf import range_partition_weights

        weights = range_partition_weights(1 << 20, 32, 1.0)
        # The first key range holds the head of the Zipf distribution.
        assert weights[0] > 0.6
        assert weights[0] > 100 * weights[-1]

    def test_monotone_decreasing_and_normalized(self):
        from repro.workloads.zipf import range_partition_weights

        for s in (0.2, 0.5, 0.8, 1.0):
            weights = range_partition_weights(1 << 16, 16, s)
            assert sum(weights) == pytest.approx(1.0)
            assert all(
                weights[i] >= weights[i + 1] - 1e-12 for i in range(15)
            )

    def test_validation(self):
        from repro.workloads.zipf import range_partition_weights

        with pytest.raises(ValueError):
            range_partition_weights(4, 8, 1.0)  # fewer keys than partitions
        with pytest.raises(ValueError):
            range_partition_weights(100, 4, -0.1)


class TestClickLog:
    def test_geolocate_is_pure_function_of_ip(self):
        ip = (7 << 26) | 12345
        assert region_of_ip(ip) == 7
        assert geolocate(ip) == region_name(7)

    def test_skewed_generation_follows_weights(self):
        records = list(generate_clicklog(30_000, skew=1.0, seed=1))
        counts = [0] * REGION_COUNT
        for ip in records:
            counts[region_of_ip(ip)] += 1
        weights = zipf_weights(REGION_COUNT, 1.0)
        assert counts[0] / len(records) == pytest.approx(weights[0], rel=0.1)
        assert counts[0] > counts[10] > counts[63]

    def test_uniform_generation(self):
        records = list(generate_clicklog(64_000, skew=0.0, seed=2))
        counts = [0] * REGION_COUNT
        for ip in records:
            counts[region_of_ip(ip)] += 1
        assert max(counts) < 3 * min(counts)

    def test_deterministic(self):
        a = list(generate_clicklog(100, 0.5, seed=3))
        assert a == list(generate_clicklog(100, 0.5, seed=3))
        assert a != list(generate_clicklog(100, 0.5, seed=4))

    def test_distinct_counts_bounded_by_unique(self):
        records = list(generate_clicklog(10_000, 0.0, seed=5, unique_per_region=64))
        for count in exact_distinct_counts(records).values():
            assert count <= 64


class TestRelations:
    def test_uniform_keys_in_range(self):
        for key, payload in generate_relation(500, key_space=100, seed=1):
            assert 0 <= key < 100
            assert len(payload) == 8

    def test_skewed_keys_favor_low_ranks(self):
        records = list(generate_relation(20_000, key_space=1000, skew=1.0, seed=2))
        low = sum(1 for k, _ in records if k < 10)
        high = sum(1 for k, _ in records if k >= 500)
        assert low > high

    def test_join_reference(self):
        left = [(1, b"a"), (2, b"b"), (1, b"c")]
        right = [(1, b"x"), (3, b"y")]
        assert join_reference(left, right) == [(1, b"a", b"x"), (1, b"c", b"x")]


class TestRmat:
    def test_edge_count_and_range(self):
        spec = RmatSpec(scale=6, edge_factor=4)
        edges = list(generate_rmat_edges(spec, seed=1))
        assert len(edges) == spec.edges == 4 * 64
        assert all(0 <= s < 64 and 0 <= d < 64 for s, d in edges)

    def test_power_law_concentration(self):
        """Low vertex ranges must dominate (the hub-partition skew)."""
        profile = rmat_partition_profile(RmatSpec(scale=20), partitions=32)
        assert profile[0] == max(profile)
        assert profile[0] > 4 / 32  # far above uniform share

    def test_profile_sums_to_one(self):
        profile = rmat_partition_profile(RmatSpec(scale=16), partitions=8)
        assert sum(profile) == pytest.approx(1.0)

    def test_transfer_matrix_rows_normalized(self):
        matrix = rmat_transfer_matrix(RmatSpec(scale=14), partitions=4)
        for row in matrix:
            assert sum(row) == pytest.approx(1.0)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            RmatSpec(scale=4, a=0.5, b=0.5, c=0.5, d=0.5)

    def test_deterministic(self):
        spec = RmatSpec(scale=8)
        assert list(generate_rmat_edges(spec, 7)) == list(generate_rmat_edges(spec, 7))
