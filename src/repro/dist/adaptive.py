"""Closed-loop control for batch depth (Eq. 1) and clone throttling.

The paper picks the number of outstanding ``remove_batch`` requests ``b``
so that storage stays utilized (Eq. 1) *and* chunk delivery hides the RPC
latency behind processing.  The engines used to freeze both knobs at
construction time (``batch_requests=4``, ``clone_min_chunks=2``); this
module closes both loops from live measurements:

* :class:`BatchDepthController` re-derives ``b`` per task from the
  measured batch-RPC latency against the task's observed per-chunk
  processing time.  The latency-hiding bound is the bandwidth-delay
  product of the fetch pipeline — while the consumer drains ``b``
  buffered chunks (``b * service_s`` seconds) the next RPC
  (``latency_s`` seconds) must complete, so ``b >= latency_s /
  service_s`` — and Eq. 1 supplies the storage-utilization floor
  (:func:`utilization_floor`).  Decisions are windowed, EMA-smoothed,
  hysteresis-damped, and step-bounded so the depth cannot thrash; the
  controller is pure arithmetic (no clock, no RNG) so a journal replay
  reconstructs it exactly.

* :class:`CloneGovernor` replaces fixed clone thresholds with live
  overload signals: work-queue depth (chunks still in the task's input
  bag) and per-shard p95 latency drift against a first-window baseline.
  Overload must persist for ``clone_onset_decisions`` consecutive
  evaluations before a clone is allowed — the same onset damping the
  sim's ``OverloadMonitor`` gets from its 2 s ``clone_interval``.

Both controllers expose ``snapshot()``/``restore()`` dicts built from
primitives only, so the master can journal them (``("adaptive", ...)``
records) and a resumed master continues from the adapted state instead
of re-warming from the static default.

This module is engine-neutral on purpose: it imports only the analysis
layer and the seeded RNG helpers, and is re-exported by
``repro.runtime.adaptive`` so the sim, local, and dist engines share one
policy implementation (parity-tested in ``tests/test_adaptive.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.utilization import expected_utilization
from repro.sim.rand import rng_from

__all__ = [
    "AdaptiveConfig",
    "BatchDepthController",
    "CloneGovernor",
    "derive_batch_depth",
    "nearest_rank",
    "reservoir_sample",
    "utilization_floor",
]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning surface of the adaptive loop.  Frozen: journaled by value."""

    min_batch: int = 1
    max_batch: int = 16
    #: chunks consumed between controller decisions.
    window: int = 8
    #: Eq. 1 storage utilization the depth must sustain at minimum.
    target_utilization: float = 0.95
    #: dead band — a derived depth *below* the current one must fall
    #: short by more than ``hysteresis * current`` before the controller
    #: shrinks (deepening acts immediately: undershoot starves the
    #: consumer, overshoot only costs buffer memory).
    hysteresis: float = 0.25
    #: largest depth change a single decision may apply.
    max_step: int = 2
    #: EMA weight of a fresh measurement (1.0 = no smoothing).
    smoothing: float = 0.5
    #: clone pressure: input-bag backlog (chunks) that counts as deep.
    clone_queue_chunks: int = 8
    #: clone pressure: shard p95 / baseline p95 ratio that counts as drift.
    clone_p95_drift: float = 1.5
    #: consecutive overloaded evaluations before a clone is allowed.
    clone_onset_decisions: int = 2

    def __post_init__(self) -> None:
        if self.min_batch < 1:
            raise ValueError(f"min_batch must be >= 1, got {self.min_batch}")
        if self.max_batch < self.min_batch:
            raise ValueError(
                f"max_batch {self.max_batch} < min_batch {self.min_batch}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.target_utilization < 1.0:
            raise ValueError(
                f"target_utilization must be in (0, 1), got {self.target_utilization}"
            )
        if self.hysteresis < 0.0:
            raise ValueError(f"hysteresis must be >= 0, got {self.hysteresis}")
        if self.max_step < 1:
            raise ValueError(f"max_step must be >= 1, got {self.max_step}")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {self.smoothing}")
        if self.clone_onset_decisions < 1:
            raise ValueError(
                f"clone_onset_decisions must be >= 1, got {self.clone_onset_decisions}"
            )


def utilization_floor(shards: int, target: float) -> float:
    """Smallest real ``b`` with ``expected_utilization(b, shards) >= target``.

    Inverts Eq. 1: ``1 - (1 - 1/m)^(bm) >= t  <=>  b >= ln(1-t) /
    (m ln(1 - 1/m))``.  With one shard any positive depth saturates it.
    """
    if shards < 1:
        raise ValueError(f"need at least one storage node, got {shards}")
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    if shards == 1:
        return 1.0
    floor = math.log(1.0 - target) / (shards * math.log(1.0 - 1.0 / shards))
    return max(1.0, floor)


def derive_batch_depth(
    latency_s: float,
    service_s: float,
    shards: int,
    config: AdaptiveConfig,
) -> int:
    """The depth Eq. 1 and latency hiding jointly ask for, clamped.

    ``latency_s`` is the observed batch-RPC round trip, ``service_s`` the
    observed per-chunk processing time.  A task that processes faster
    than storage delivers (small ``service_s``) needs a deeper pipeline;
    a task that is compute-bound needs no more than the Eq. 1 floor.
    """
    floor = utilization_floor(shards, config.target_utilization)
    if service_s > 0.0 and latency_s > 0.0:
        # Capped before ceil(): a denormal service time would push the
        # ratio to inf, and everything past max_batch clamps anyway.
        pipeline = min(latency_s / service_s, float(config.max_batch))
    else:
        pipeline = 0.0  # no processing signal yet: the floor decides
    depth = math.ceil(max(floor, pipeline) - 1e-9)
    return max(config.min_batch, min(config.max_batch, depth))


class BatchDepthController:
    """Per-task closed loop over the fetch pipeline depth ``b``.

    Feed it one :meth:`observe` per consumed chunk; every
    ``config.window`` chunks it re-derives the depth and returns the new
    value when it actually changes (hysteresis and step bounds applied).
    Deterministic: state is a pure function of the observation sequence.
    """

    def __init__(
        self,
        config: AdaptiveConfig,
        shards: int,
        initial_depth: Optional[int] = None,
    ):
        if shards < 1:
            raise ValueError(f"need at least one storage node, got {shards}")
        self.config = config
        self.shards = shards
        if initial_depth is None:
            initial_depth = derive_batch_depth(0.0, 0.0, shards, config)
        self.depth = max(config.min_batch, min(config.max_batch, initial_depth))
        self._latency_ema: Optional[float] = None
        self._service_ema: Optional[float] = None
        self._chunks_seen = 0
        self._since_decision = 0
        self.decisions = 0
        #: (chunks consumed when armed, depth) — the bench's ``b`` trajectory.
        self.trajectory: List[Tuple[int, int]] = [(0, self.depth)]

    def _ema(self, prev: Optional[float], sample: float) -> float:
        if prev is None:
            return sample
        a = self.config.smoothing
        return a * sample + (1.0 - a) * prev

    def observe(
        self,
        *,
        latencies: Sequence[float] = (),
        service_s: Optional[float] = None,
    ) -> Optional[int]:
        """Account one consumed chunk; return the new depth iff it moved.

        ``latencies`` are batch-RPC round trips newly observed since the
        previous call (the fetcher may deliver several chunks per RPC,
        so most calls carry zero or one sample); ``service_s`` is the
        wall time the consumer spent processing the chunk.
        """
        for sample in latencies:
            if sample >= 0.0:
                self._latency_ema = self._ema(self._latency_ema, sample)
        if service_s is not None and service_s >= 0.0:
            self._service_ema = self._ema(self._service_ema, service_s)
        self._chunks_seen += 1
        self._since_decision += 1
        if self._since_decision < self.config.window:
            return None
        self._since_decision = 0
        return self._decide()

    def _decide(self) -> Optional[int]:
        self.decisions += 1
        if self._latency_ema is None:
            return None  # not one RPC completed yet: nothing to derive from
        target = derive_batch_depth(
            self._latency_ema,
            self._service_ema if self._service_ema is not None else 0.0,
            self.shards,
            self.config,
        )
        gap = target - self.depth
        # Asymmetric damping: undershooting the pipeline depth costs
        # throughput linearly (the consumer starves), while overshooting
        # costs only buffer memory — so upward gaps act immediately and
        # only downward moves must clear the hysteresis dead band.
        if gap <= 0 and abs(gap) <= self.config.hysteresis * self.depth:
            return None
        step = max(-self.config.max_step, min(self.config.max_step, gap))
        depth = self.depth + step
        depth = max(self.config.min_batch, min(self.config.max_batch, depth))
        if depth == self.depth:
            return None
        self.depth = depth
        self.trajectory.append((self._chunks_seen, depth))
        return depth

    def snapshot(self) -> Dict[str, Any]:
        """Journalable state: primitives only, restores bit-exactly."""
        return {
            "depth": self.depth,
            "latency_ema": self._latency_ema,
            "service_ema": self._service_ema,
            "chunks_seen": self._chunks_seen,
            "since_decision": self._since_decision,
            "decisions": self.decisions,
            "trajectory": [list(point) for point in self.trajectory],
        }

    @classmethod
    def restore(
        cls,
        config: AdaptiveConfig,
        shards: int,
        state: Dict[str, Any],
    ) -> "BatchDepthController":
        controller = cls(config, shards, initial_depth=int(state["depth"]))
        controller._latency_ema = state.get("latency_ema")
        controller._service_ema = state.get("service_ema")
        controller._chunks_seen = int(state.get("chunks_seen", 0))
        controller._since_decision = int(state.get("since_decision", 0))
        controller.decisions = int(state.get("decisions", 0))
        trajectory = state.get("trajectory")
        if trajectory:
            controller.trajectory = [
                (int(chunks), int(depth)) for chunks, depth in trajectory
            ]
        return controller


def nearest_rank(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (the convention the dist bench reports)."""
    if not samples:
        raise ValueError("nearest_rank of an empty sample set")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"percentile must be in (0, 1], got {p}")
    ordered = sorted(samples)
    index = max(0, min(len(ordered) - 1, math.ceil(p * len(ordered)) - 1))
    return ordered[index]


class CloneGovernor:
    """Gate clone grants on live overload instead of fixed thresholds.

    Two signals say "overloaded": the candidate task's input backlog is
    at least ``clone_queue_chunks`` chunks deep, or any shard's current
    p95 chunk latency has drifted to ``clone_p95_drift`` times the p95
    of the first window observed for that shard (machine skew: a shard
    that got slow, not one that started slow).  Either signal must hold
    for ``clone_onset_decisions`` consecutive evaluations before
    :meth:`evaluate` allows a clone — transient spikes grant nothing.
    """

    def __init__(self, config: AdaptiveConfig):
        self.config = config
        self._baseline_p95: Dict[Any, float] = {}
        self._current_p95: Dict[Any, float] = {}
        self._onset = 0
        #: every evaluation with its inputs — the bench's decision log.
        self.decisions: List[Dict[str, Any]] = []

    def observe_latencies(self, source: Any, samples: Sequence[float]) -> None:
        """Feed a window of latency samples for one shard (or source key).

        The first window a source reports becomes its drift baseline.
        """
        cleaned = [s for s in samples if s >= 0.0]
        if not cleaned:
            return
        p95 = nearest_rank(cleaned, 0.95)
        if source not in self._baseline_p95:
            self._baseline_p95[source] = max(p95, 1e-9)
            return
        self._current_p95[source] = p95

    def drift(self) -> float:
        """Worst current-to-baseline p95 ratio across sources (1.0 = none)."""
        worst = 1.0
        for source, current in self._current_p95.items():
            worst = max(worst, current / self._baseline_p95[source])
        return worst

    def evaluate(self, queue_chunks: int) -> bool:
        """One clone decision: True iff sustained overload says clone now."""
        drift = self.drift()
        queue_deep = queue_chunks >= self.config.clone_queue_chunks
        drifted = drift >= self.config.clone_p95_drift
        overloaded = queue_deep or drifted
        self._onset = self._onset + 1 if overloaded else 0
        allow = self._onset >= self.config.clone_onset_decisions
        self.decisions.append(
            {
                "queue_chunks": queue_chunks,
                "p95_drift": drift,
                "queue_deep": queue_deep,
                "drifted": drifted,
                "onset": self._onset,
                "allow": allow,
            }
        )
        return allow

    def snapshot(self) -> Dict[str, Any]:
        return {
            "baseline_p95": dict(self._baseline_p95),
            "current_p95": dict(self._current_p95),
            "onset": self._onset,
            "decisions": [dict(d) for d in self.decisions],
        }

    @classmethod
    def restore(cls, config: AdaptiveConfig, state: Dict[str, Any]) -> "CloneGovernor":
        governor = cls(config)
        governor._baseline_p95 = dict(state.get("baseline_p95", {}))
        governor._current_p95 = dict(state.get("current_p95", {}))
        governor._onset = int(state.get("onset", 0))
        governor.decisions = [dict(d) for d in state.get("decisions", [])]
        return governor


def reservoir_sample(samples: Sequence[Any], k: int, *seed_parts: object) -> List[Any]:
    """Uniform ``k``-sample of ``samples`` (Algorithm R), seeded.

    Every element has probability ``k/n`` of surviving, so a capped
    latency population keeps its steady-state shape instead of freezing
    the first ``k`` warm-up samples.  Deterministic in the seed labels.
    """
    if k < 1:
        raise ValueError(f"reservoir size must be >= 1, got {k}")
    if len(samples) <= k:
        return list(samples)
    rng = rng_from("latency-reservoir", *seed_parts)
    reservoir = list(samples[:k])
    for index in range(k, len(samples)):
        slot = rng.randrange(index + 1)
        if slot < k:
            reservoir[slot] = samples[index]
    return reservoir


def _parity_probe(shards: int, target: float) -> Tuple[float, float]:
    """Eq. 1 at the derived floor — used by the sim/dist parity test."""
    floor = utilization_floor(shards, target)
    return floor, expected_utilization(floor, shards)
