"""Storage throughput scaling (Section 5.2, "Throughput and Storage
Utilization").

The paper's synthetic benchmark: every worker writes a fixed amount of
random data through the bag abstraction and reads it back, doubling the
machine count from 1 to 32. Expected result: aggregate read/write
bandwidth scales nearly linearly with storage nodes (330 MB/s at 1 machine
to ~10.5 GB/s at 32, a 31.9x speedup for 32x machines).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.spec import paper_cluster
from repro.experiments.common import format_rows, full_scale
from repro.sim.kernel import Environment
from repro.storage.bags import BagCatalog
from repro.storage.client import StorageClient
from repro.units import DEFAULT_CHUNK_SIZE, GB, MB

MACHINE_COUNTS = (1, 2, 4, 8, 16, 32)


def _scaling_run(machines: int, per_machine_bytes: int) -> dict:
    env = Environment()
    cluster = Cluster(env, paper_cluster(machines))
    nodes = list(range(machines))
    granularity = max(
        1, int(per_machine_bytes * machines / (6000 * DEFAULT_CHUNK_SIZE))
    )
    catalog = BagCatalog(nodes, DEFAULT_CHUNK_SIZE)
    clients = {
        n: StorageClient(env, cluster, catalog, n, granularity=granularity)
        for n in nodes
    }
    for n in nodes:
        catalog.create(f"data.{n}")

    def write_phase(node: int):
        writer = clients[node].writer(f"data.{node}")
        writer.add(per_machine_bytes)
        yield from writer.close()

    def read_phase(node: int):
        reader = clients[node].reader(f"data.{node}")
        while True:
            nbytes = yield from reader.next_chunk()
            if nbytes is None:
                return

    start = env.now
    env.run(until=env.all_of([env.process(write_phase(n)) for n in nodes]))
    write_seconds = env.now - start
    for n in nodes:
        catalog.get(f"data.{n}").seal()
    start = env.now
    env.run(until=env.all_of([env.process(read_phase(n)) for n in nodes]))
    read_seconds = env.now - start
    total = per_machine_bytes * machines
    return {
        "machines": machines,
        "write_gbps": total / write_seconds / GB,
        "read_gbps": total / read_seconds / GB,
    }


def run_storage_scaling(
    full: Optional[bool] = None,
    machine_counts: Sequence[int] = MACHINE_COUNTS,
) -> List[dict]:
    per_machine = 100 * GB if full_scale(full) else 4 * GB
    rows = []
    base_read = base_write = None
    for machines in machine_counts:
        row = _scaling_run(machines, per_machine)
        if base_read is None:
            base_read, base_write = row["read_gbps"], row["write_gbps"]
        row["read_speedup"] = row["read_gbps"] / base_read
        row["write_speedup"] = row["write_gbps"] / base_write
        rows.append(row)
    return rows


def main() -> None:
    print(format_rows(run_storage_scaling()))


if __name__ == "__main__":
    main()
