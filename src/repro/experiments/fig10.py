"""Figure 10: batch sampling factor sweep (b = 1 .. 32).

"Runtime of ClickLog Phase 1 on 32 machines": the phase runs one worker
per machine (statically split, isolating the storage-prefetch effect from
cloning), normalized to b = 1. Prefetching multiple chunks keeps storage
nodes busy and workers fed (b = 10 is the paper's sweet spot, ~33% faster
than b = 1); b = 32 over-prefetches with no further gain.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.apps.clicklog import build_clicklog_sim
from repro.experiments.common import format_rows, full_scale, run_sim
from repro.units import GB

BATCH_FACTORS = (1, 2, 3, 5, 10, 16, 32)


def run_fig10(
    full: Optional[bool] = None,
    machines: int = 32,
    batch_factors: Sequence[int] = BATCH_FACTORS,
) -> List[dict]:
    input_bytes = 320 * GB if full_scale(full) else 64 * GB
    rows = []
    baseline = None
    for b in batch_factors:
        app, inputs = build_clicklog_sim(
            input_bytes, skew=0.0, phase1_tasks=machines
        )
        report = run_sim(
            app, inputs, machines=machines, overrides={"batch_factor": b}
        )
        phase1 = report.phases["phase1"]
        phase1_runtime = phase1[1] - phase1[0]
        if baseline is None:
            baseline = phase1_runtime
        rows.append(
            {
                "b": b,
                "phase1_s": phase1_runtime,
                "normalized_to_b1": phase1_runtime / baseline,
            }
        )
    return rows


def main() -> None:
    print(format_rows(run_fig10()))


if __name__ == "__main__":
    main()
