"""Amdahl's-law bounds used in Sections 5.1 and 5.2.

The paper treats the largest partition as the serial fraction: if it holds
a share ``p`` of the input and is never broken up, the best achievable
speedup on ``n`` machines is ``1 / (p + (1 - p) / n)``, and the best-case
slowdown relative to perfectly uniform partitions is ``n / speedup``.
With p = 19.6% and n = 32 that gives the paper's 4.5x speedup / 7.1x
slowdown figures.
"""

from __future__ import annotations


def amdahl_speedup(serial_fraction: float, machines: int) -> float:
    """Maximum speedup when ``serial_fraction`` of the work cannot split.

    >>> round(amdahl_speedup(0.196, 32), 1)
    4.5
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction must be in [0, 1], got {serial_fraction}")
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / machines)


def amdahl_best_slowdown(largest_share: float, machines: int) -> float:
    """Best-case slowdown vs uniform partitions (dashed lines, Figure 6).

    >>> round(amdahl_best_slowdown(0.196, 32), 1)
    7.1
    """
    return machines / amdahl_speedup(largest_share, machines)
