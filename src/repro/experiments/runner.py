"""CLI entry point: ``python -m repro.experiments.runner <experiment>``.

``--full`` (or ``REPRO_FULL=1``) runs the paper-scale configuration.
``all`` runs every experiment in order.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import common
from repro.experiments.common import format_rows


def _table_main(run_fn):
    def main(full):
        print(format_rows(run_fn(full=full)))

    return main


def _dict_main(run_fn):
    def main(full):
        result = run_fn(full=full)
        for key, value in result.items():
            if key == "timeline":
                print(f"timeline: {len(value)} samples")
            else:
                print(f"{key}: {value}")

    return main


def _registry():
    from repro.experiments import (
        eq1,
        fig5,
        fig6,
        fig7_fig8,
        fig9,
        fig10,
        fig11,
        fig12,
        storage_scaling,
        table1,
        table2,
        table3,
        table4,
    )

    return {
        "table1": _table_main(table1.run_table1),
        "table2": _table_main(table2.run_table2),
        "table3": _table_main(table3.run_table3),
        "table4": _table_main(table4.run_table4),
        "fig5": _table_main(fig5.run_fig5),
        "fig6": _table_main(fig6.run_fig6),
        "fig7_fig8": _table_main(fig7_fig8.run_fig7_fig8),
        "fig9": _dict_main(fig9.run_fig9),
        "fig10": _table_main(fig10.run_fig10),
        "fig11": _dict_main(fig11.run_fig11),
        "fig12": _table_main(fig12.run_fig12),
        "eq1": lambda full: print(format_rows(eq1.run_eq1())),
        "storage_scaling": _table_main(storage_scaling.run_storage_scaling),
    }


def main(argv=None) -> int:
    registry = _registry()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment", choices=sorted(registry) + ["all"], help="which experiment"
    )
    parser.add_argument(
        "--full", action="store_true", help="run the paper-scale configuration"
    )
    args = parser.parse_args(argv)
    names = sorted(registry) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"\n=== {name} ===")
        started = time.time()
        registry[name](full=args.full or None)
        print(f"[{name}: {time.time() - started:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
