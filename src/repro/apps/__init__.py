"""The paper's three evaluation applications (Section 5.3).

Each application comes in two forms sharing the same dataflow graph shape:

* ``build_*_sim`` — a cost-annotated graph for the cluster simulator
  (used by every table/figure harness);
* ``build_*_local`` — the same graph with real record-level task functions
  and merges for the local engine (used to validate semantics end-to-end
  on real data).

Calibration constants (CPU cost per MB, output sizes) live in
:mod:`repro.apps.calibration` and were fit against Table 1; see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.apps.clicklog import (
    build_clicklog_local,
    build_clicklog_sim,
    clicklog_region_weights,
)
from repro.apps.clicklog_stream import build_clicklog_stream
from repro.apps.hashjoin import build_hashjoin_local, build_hashjoin_sim
from repro.apps.pagerank import build_pagerank_local, build_pagerank_sim

__all__ = [
    "build_clicklog_local",
    "build_clicklog_sim",
    "build_clicklog_stream",
    "build_hashjoin_local",
    "build_hashjoin_sim",
    "build_pagerank_local",
    "build_pagerank_sim",
    "clicklog_region_weights",
]
