"""Seeded fault-plan fuzzing with cross-layer invariant checks.

``python -m repro chaos --seed S --runs N`` generates N randomized
:class:`~repro.runtime.faults.FaultPlan`s from the seed — crash kind,
victim node, crash time drawn from the scenario's expected runtime,
optional restarts, and compound schedules such as crashing the recovery
master while it is itself replaying — runs each against a small ClickLog /
HashJoin / PageRank scenario, and checks the invariants the paper's
fault-tolerance story promises (Section 4.4):

* the job completes despite the plan;
* sink-bag output matches the fault-free baseline (byte-for-byte for the
  fixed-size aggregation sinks; concat sinks tolerate the per-writer
  partial-tail rounding documented in ``BagWriter.close``);
* no chunk is lost or double-counted: every shard's read pointer stays
  within ``[0, bytes_written]`` and every stream input is fully drained;
* no execution node completes twice after its family's last reset
  tombstone in the done log;
* leftover ready/running work-bag entries are stale (their nodes are done
  or were discarded by a reset), never live work the job forgot;
* the same seed produces an identical run, byte for byte (every faulted
  run is executed twice and its report digest compared).

Failures print the offending plan, which — being derived only from the
seed — reproduces the run exactly.

``--dist`` switches the fuzzer from the simulator to the **real**
multiprocess engine: each seeded run draws a (shards, workers) topology
plus a fault cocktail — a storage-shard kill (``os._exit`` on the N-th
``remove_batch``, aimed at a shard that demonstrably serves stream
traffic), optionally a worker kill, and optionally a **master kill**
(the control plane dies after a seeded number of journal records and a
fresh incarnation resumes from checkpoint + WAL replay; ``--master-kill``
makes this part of every plan) — and demands sink parity against a
fault-free LocalRuntime baseline. Replication is drawn from the seeded
rng (1 or 2) so both shard-death recovery paths — loss-closure replay
(r=1) and primary-backup failover (r=2) — are reachable at any run
count. Spill joins the cocktail too: ~1/3 of plans (every plan with
``--spill``) run with a tiny ``resident_bytes`` budget, so the
disk-backed segment layer is what the kills land on — segment-shipping
resync at r=2, directory reopen at r=1 — and plans with a live copy of
everything (r=2, or spill at any r) and neither a worker nor a master
kill must finish with ZERO family resets. Spill plans may also aim the
shard kill *inside* a segment compaction (one of the two crash windows,
pre- or post-index-record) instead of at an op count. The closed-loop
controller (:mod:`repro.dist.adaptive`) is armed in ~half of plans
(every plan with ``--adaptive``): kills then also have to preserve
controller state — worker respawns restore batch-depth snapshots from
their descriptors and master resume replays ``adaptive``/``governor``
journal records — under the same sink-parity and zero-reset gates.
Failing spill plans preserve their shards' segment directories
alongside the journal under ``REPRO_CHAOS_KEEP_JOURNALS``. No
determinism digest there: OS process scheduling is not seeded, only the
*outcome* is checked.
"""

from __future__ import annotations

import argparse
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.spec import paper_cluster
from repro.errors import ReproError
from repro.model.execution_graph import NodeState
from repro.runtime.config import HurricaneConfig, InputSpec
from repro.runtime.faults import FaultPlan
from repro.runtime.job import SimJob
from repro.runtime.report import RunReport
from repro.runtime.taskmanager import ResetEntry
from repro.sim.rand import rng_from
from repro.units import GB, MB

#: Chaos always runs with backups so single storage-node crashes are
#: survivable; plans never take down more nodes than replication covers.
CHAOS_REPLICATION = 2


# ---------------------------------------------------------------------------
# scenarios


@dataclass(frozen=True)
class ChaosScenario:
    """One small application the fuzzer throws fault plans at."""

    name: str
    build: Callable[[], tuple]  # -> (Application, {bag_id: InputSpec})
    machines: int = 6
    #: Max absolute byte drift per sink bag vs the fault-free baseline.
    #: 0 for fixed-size aggregation sinks; concat sinks allow the
    #: per-writer partial-tail ceil (BagWriter.close) to differ when
    #: cloning decisions differ under faults.
    output_tolerance: int = 0


def _build_clicklog():
    from repro.apps.clicklog import build_clicklog_sim

    return build_clicklog_sim(6 * GB, skew=1.0, partitions=8)


def _build_hashjoin():
    from repro.apps.hashjoin import build_hashjoin_sim

    return build_hashjoin_sim(256 * MB, 4 * GB, skew=1.0, partitions=4)


def _build_pagerank():
    from repro.apps.pagerank import build_pagerank_sim
    from repro.workloads.rmat import RmatSpec

    return build_pagerank_sim(
        RmatSpec(scale=22), iterations=3, partitions=4, profile_samples=20_000
    )


def scenarios() -> List[ChaosScenario]:
    return [
        ChaosScenario("clicklog", _build_clicklog),
        ChaosScenario("hashjoin", _build_hashjoin, output_tolerance=4096),
        ChaosScenario("pagerank", _build_pagerank),
    ]


def chaos_config() -> HurricaneConfig:
    return HurricaneConfig(replication=CHAOS_REPLICATION, tracing_enabled=True)


# ---------------------------------------------------------------------------
# plan generation


def generate_plan(
    rng,
    baseline_runtime: float,
    config: HurricaneConfig,
    compute_nodes: List[int],
    storage_nodes: List[int],
) -> FaultPlan:
    """Draw a survivable fault plan from ``rng``.

    Survivable means the plan never exceeds what the architecture claims to
    tolerate: at most ``CHAOS_REPLICATION - 1`` storage nodes down (here: one
    storage crash per plan), at least two compute nodes never permanently
    crashed, and at most two master crashes. Within those bounds anything
    goes — including a second master crash timed to land while the recovery
    master is replaying the done log.
    """
    plan = FaultPlan()
    t_lo = config.startup_delay + 1.0
    t_hi = max(t_lo + 1.0, 0.85 * baseline_runtime)

    def crash_time() -> float:
        return round(rng.uniform(t_lo, t_hi), 3)

    permanent_budget = len(compute_nodes) - 2
    permanent_deaths = 0
    compute_pool = list(compute_nodes)
    master_crashes = 0
    storage_crashed = False
    for _ in range(rng.randint(1, 3)):
        kind = rng.choices(
            ["compute", "master", "storage"], weights=[5, 3, 2]
        )[0]
        if kind == "compute" and compute_pool:
            node = compute_pool.pop(rng.randrange(len(compute_pool)))
            restart = None
            if permanent_deaths >= permanent_budget or rng.random() < 0.6:
                restart = round(rng.uniform(1.0, 8.0), 3)
            else:
                permanent_deaths += 1
            plan.crash_compute(at=crash_time(), node=node, restart_after=restart)
        elif kind == "master" and master_crashes < 2:
            at = crash_time()
            plan.crash_master(at=at)
            master_crashes += 1
            if master_crashes < 2 and rng.random() < 0.35:
                # Compound schedule: kill the recovery master while it is
                # itself waiting out master_recovery_delay / replaying.
                delta = config.master_restart_delay + rng.uniform(
                    0.0, config.master_recovery_delay
                )
                plan.crash_master(at=round(at + delta, 3))
                master_crashes += 1
        elif kind == "storage" and not storage_crashed:
            node = rng.choice(storage_nodes)
            restart = (
                round(rng.uniform(2.0, 10.0), 3) if rng.random() < 0.5 else None
            )
            plan.crash_storage(at=crash_time(), node=node, restart_after=restart)
            storage_crashed = True
    return plan


def describe_plan(plan: FaultPlan) -> str:
    parts = []
    for c in plan.compute_crashes:
        restart = f",r={c.restart_after}s" if c.restart_after is not None else ""
        parts.append(f"compute(n{c.node}@{c.at}s{restart})")
    for c in plan.master_crashes:
        parts.append(f"master(@{c.at}s)")
    for c in plan.storage_crashes:
        restart = f",r={c.restart_after}s" if c.restart_after is not None else ""
        parts.append(f"storage(n{c.node}@{c.at}s{restart})")
    return "+".join(parts) if parts else "none"


# ---------------------------------------------------------------------------
# invariants


@dataclass
class RunOutcome:
    """Everything the invariant checks and the digest need from one run."""

    scenario: str
    plan: FaultPlan
    job: Optional[SimJob] = None
    report: Optional[RunReport] = None
    error: Optional[BaseException] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations


def sink_fingerprint(job: SimJob) -> Dict[str, int]:
    return {
        bag_id: int(job.catalog.get(bag_id).written_total())
        for bag_id in job.graph.sink_bags()
    }


def check_invariants(
    outcome: RunOutcome, baseline_sinks: Dict[str, int], tolerance: int
) -> List[str]:
    """All cross-layer invariant checks against one completed run."""
    job = outcome.job
    violations: List[str] = []

    # 1. Completion: the job finished and every execution node is DONE.
    if not job.exec.all_done():
        violations.append("job reported completion but exec graph is not all-done")
    for node in job.exec.nodes.values():
        if node.state != NodeState.DONE:
            violations.append(
                f"node {node.node_id} ended in state {node.state.value}"
            )

    # 2. Output: sink bags match the fault-free baseline.
    sinks = sink_fingerprint(job)
    for bag_id, expected in baseline_sinks.items():
        got = sinks.get(bag_id, 0)
        if abs(got - expected) > tolerance:
            violations.append(
                f"sink {bag_id}: {got} bytes vs baseline {expected} "
                f"(tolerance {tolerance})"
            )

    # 3. Conservation: no shard read more than was written, none negative.
    for bag in job.catalog.bags():
        for node, shard in bag.shards.items():
            if shard.bytes_written < 0 or shard.bytes_read < 0:
                violations.append(
                    f"bag {bag.bag_id} shard {node}: negative byte counter "
                    f"(written={shard.bytes_written}, read={shard.bytes_read})"
                )
            if shard.bytes_read > shard.bytes_written:
                violations.append(
                    f"bag {bag.bag_id} shard {node}: read {shard.bytes_read} "
                    f"of {shard.bytes_written} written (double-consumed)"
                )

    # 4. Drain: every task family fully consumed its stream input.
    for task_id, family in job.exec.families.items():
        bag_id = family.original.spec.stream_input
        if bag_id not in job.catalog:
            continue
        remaining = job.catalog.get(bag_id).remaining_total()
        if remaining != 0:
            violations.append(
                f"stream input {bag_id} of {task_id}: {remaining} bytes "
                "never consumed (lost work)"
            )

    # 5. Done log: after a family's last reset tombstone, no execution node
    #    completes twice (exactly-once completion per node).
    entries = job.workbags.done.entries()
    last_reset: Dict[str, int] = {}
    for position, entry in enumerate(entries):
        if isinstance(entry, ResetEntry):
            last_reset[entry.task_id] = position
    seen: Dict[str, int] = {}
    for position, entry in enumerate(entries):
        if isinstance(entry, ResetEntry):
            continue
        if position <= last_reset.get(entry.task_id, -1):
            continue  # pre-reset entry: discarded work, duplicates allowed
        if entry.node_id in seen:
            violations.append(
                f"node {entry.node_id} completed twice after its last reset "
                f"tombstone (log positions {seen[entry.node_id]} and {position})"
            )
        else:
            seen[entry.node_id] = position

    # 6. Work bags: leftovers must be stale — a live READY/RUNNING message
    #    at completion is work the job forgot about.
    for msg in job.workbags.ready.items():
        node = job.exec.nodes.get(msg.node_id)
        if node is not None and node.state != NodeState.DONE:
            violations.append(
                f"ready bag holds live message for {msg.node_id} "
                f"({node.state.value}) at completion"
            )
    for entry in job.workbags.running.items():
        node = job.exec.nodes.get(entry.node_id)
        if node is not None and node.state != NodeState.DONE:
            violations.append(
                f"running bag holds live entry for {entry.node_id} "
                f"({node.state.value}) at completion"
            )
    return violations


# ---------------------------------------------------------------------------
# execution + determinism digest


def run_digest(job: SimJob, report: RunReport) -> str:
    """A stable digest of everything observable about one run.

    Two executions of the same scenario + plan must produce the same digest
    — this is the "same seed, identical RunReport" invariant. Covers the
    report (runtime, events, trace metrics), the done log, and the sink
    fingerprint.
    """
    h = hashlib.sha256()
    h.update(repr(report.runtime).encode())
    h.update(repr(sorted(sink_fingerprint(job).items())).encode())
    for entry in job.workbags.done.entries():
        h.update(repr(entry).encode())
    for t, kind, info in report.events:
        h.update(repr((t, kind, sorted(info.items()))).encode())
    h.update(repr(sorted(report.trace_metrics.items())).encode())
    h.update(repr(sorted(report.clone_counts.items())).encode())
    return h.hexdigest()


def execute(
    scenario: ChaosScenario,
    plan: FaultPlan,
    timeout: Optional[float] = None,
    max_steps: Optional[int] = None,
) -> Tuple[SimJob, RunReport]:
    app, inputs = scenario.build()
    job = SimJob(
        app.graph,
        inputs,
        cluster_spec=paper_cluster(scenario.machines),
        config=chaos_config(),
        fault_plan=plan,
    )
    report = job.run(timeout=timeout, max_steps=max_steps)
    return job, report


@dataclass
class Baseline:
    runtime: float
    steps: int
    sinks: Dict[str, int]

    @property
    def timeout(self) -> float:
        # Sim-time hang guard: generous, the step budget is the hard stop.
        return self.runtime * 10.0 + 120.0

    @property
    def max_steps(self) -> int:
        # Deterministic livelock watchdog (see Environment.run).
        return self.steps * 30 + 200_000


def measure_baseline(scenario: ChaosScenario) -> Baseline:
    job, report = execute(scenario, FaultPlan())
    return Baseline(
        runtime=report.runtime,
        steps=job.env.step_count,
        sinks=sink_fingerprint(job),
    )


def _metric_summary(report: RunReport) -> str:
    metrics = report.trace_metrics
    putback = metrics.get("storage.putback_bytes", 0.0)
    return (
        f"tasks={int(metrics.get('task.completed', 0))}"
        f" interrupted={int(metrics.get('task.interrupted', 0))}"
        f" clones={int(metrics.get('clone.granted', 0))}"
        f" putback={putback / MB:.1f}MB"
    )


def fuzz_one(
    scenario: ChaosScenario,
    baseline: Baseline,
    seed: int,
    index: int,
    verify_determinism: bool = True,
) -> Tuple[RunOutcome, str]:
    """Run one seeded fault plan; returns the outcome and a summary line."""
    rng = rng_from("chaos", seed, scenario.name, index)
    config = chaos_config()
    compute, storage = config.resolve_nodes(scenario.machines)
    plan = generate_plan(rng, baseline.runtime, config, compute, storage)
    outcome = RunOutcome(scenario=scenario.name, plan=plan)
    try:
        outcome.job, outcome.report = execute(
            scenario, plan, timeout=baseline.timeout, max_steps=baseline.max_steps
        )
    except ReproError as exc:
        outcome.error = exc
        line = (
            f"{scenario.name} run {index}: plan={describe_plan(plan)} "
            f"FAILED ({type(exc).__name__}: {exc})"
        )
        return outcome, line
    outcome.violations = check_invariants(
        outcome, baseline.sinks, scenario.output_tolerance
    )
    digest = run_digest(outcome.job, outcome.report)
    if verify_determinism:
        replay_job, replay_report = execute(
            scenario, plan, timeout=baseline.timeout, max_steps=baseline.max_steps
        )
        replay = run_digest(replay_job, replay_report)
        if replay != digest:
            outcome.violations.append(
                f"non-deterministic: digests {digest[:12]} != {replay[:12]} "
                "for the identical plan"
            )
    status = "ok" if outcome.ok else f"VIOLATED({len(outcome.violations)})"
    line = (
        f"{scenario.name} run {index}: plan={describe_plan(plan)} "
        f"runtime={outcome.report.runtime:.1f}s {_metric_summary(outcome.report)} "
        f"digest={digest[:12]} {status}"
    )
    return outcome, line


# ---------------------------------------------------------------------------
# dist-engine chaos (real processes, real kills)


@dataclass(frozen=True)
class DistChaosScenario:
    """One small workload the dist fuzzer runs with injected kills."""

    name: str
    #: -> (Application, {source bag: records}, DistRuntime kwargs)
    build: Callable[[], Tuple[Any, Dict[str, list], Dict[str, Any]]]


def _dist_clicklog():
    from repro.apps import build_clicklog_local
    from repro.workloads.clicklog_data import generate_clicklog

    regions = ["usa", "china"]
    records = [
        ip
        for ip in generate_clicklog(2_500, skew=0.8, seed=13)
        if (ip >> 26) < len(regions)
    ]
    return (
        build_clicklog_local(regions=regions),
        {"clicklog": records},
        {"chunk_size": 2048},
    )


def _dist_hashjoin():
    from repro.apps import build_hashjoin_local
    from repro.workloads.relations import generate_relation

    inputs = {
        "relation.r": list(
            generate_relation(100, key_space=1 << 12, skew=0.9, seed=3)
        ),
        "relation.s": list(
            generate_relation(700, key_space=1 << 12, skew=0.0, seed=4)
        ),
    }
    return build_hashjoin_local(partitions=2), inputs, {"records_per_chunk": 64}


def dist_scenarios() -> List[DistChaosScenario]:
    return [
        DistChaosScenario("clicklog", _dist_clicklog),
        DistChaosScenario("hashjoin", _dist_hashjoin),
    ]


def _dist_sink_fingerprint(graph, records_of) -> Dict[str, List[str]]:
    # Sorted reprs: sink record order is interleaving-dependent for
    # streamed (concat) sinks, and repr makes mixed record types sortable.
    return {
        bag_id: sorted(repr(record) for record in records_of(bag_id))
        for bag_id in graph.sink_bags()
    }


def dist_baseline(scenario: DistChaosScenario) -> Dict[str, List[str]]:
    from repro.local import LocalRuntime

    app, inputs, _ = scenario.build()
    result = LocalRuntime(app, workers=1, cloning=False).run(
        dict(inputs), timeout=120
    )
    return _dist_sink_fingerprint(app.graph, result.records)


def fuzz_one_dist(
    scenario: DistChaosScenario,
    baseline_sinks: Dict[str, List[str]],
    seed: int,
    index: int,
    master_kill: bool = False,
    spill: bool = False,
    adaptive: bool = False,
) -> Tuple[bool, str]:
    """One seeded dist run with injected kills; (ok, summary line)."""
    import os
    import shutil
    import tempfile

    from repro.dist import DistRuntime, MasterKilled
    from repro.dist.sharding import ShardRouter

    rng = rng_from("chaos-dist", seed, scenario.name, index)
    app, inputs, kwargs = scenario.build()
    shards = rng.randint(2, 3)
    workers = rng.randint(2, 3)
    # Drawn from the seeded rng, not from run-index parity: a single-run
    # invocation (--runs 1, or a CI shard pinned to one index) can land on
    # either recovery path depending on the seed, and a seed sweep covers
    # both without needing an even run count. The old ``index % 2`` rule
    # made ``--runs 1`` structurally unable to ever test replication.
    replication = rng.choice([1, 2])
    # The closed-loop controller joins the cocktail: ~half of plans arm
    # the per-task batch-depth controller plus the clone governor
    # (``--adaptive`` arms every plan, the CI arm), so worker respawns
    # restore controller snapshots from descriptors, master resume
    # replays "adaptive"/"governor" journal records, and the sink-parity
    # and zero-reset gates below apply unchanged to adaptive runs.
    adaptive_run = adaptive or rng.random() < 0.5
    # Spilling plans exercise the disk-backed segment layer under kills:
    # a deliberately tiny budget forces most chunks out of the hot cache,
    # so the killed shard's recovery really reads segments back (reopen
    # at r=1, segment shipping at r=2). ``--spill`` makes every plan
    # spill (the CI arm); otherwise ~1/3 of plans draw it anyway so
    # default fuzzing covers the layer too.
    resident_bytes = None
    if spill or rng.random() < 1 / 3:
        resident_bytes = rng.choice([2048, 4096, 8192])
    # Aim at a shard that homes a stream-input bag: remove_batch traffic
    # is guaranteed there, so the injected kill actually fires mid-run.
    router = ShardRouter(shards, replication)
    stream_homes = sorted(
        {router.home(spec.stream_input) for spec in app.graph.tasks.values()}
    )
    kill_shard = rng.choice(stream_homes)
    kill_ops = rng.randint(1, 4)
    # Spill plans sometimes aim the shard kill *inside* a compaction
    # window instead of at an op count: the victim dies between writing
    # the compacted segments and logging the swap ("written"), or between
    # logging it and unlinking the old files ("indexed") — the two crash
    # windows the segment store's reopen must disambiguate. A plan whose
    # run never compacts simply never fires the kill, which doubles as a
    # does-nothing check (mirroring the high-tail master kills).
    kill_in_compaction = None
    if resident_bytes is not None and rng.random() < 1 / 3:
        kill_in_compaction = rng.choice(["written", "indexed"])
    kill_task = None
    if rng.random() < 0.35:
        kill_task = rng.choice(sorted(app.graph.tasks))
    # The master joins the fault cocktail: journal its control plane and
    # kill it after a seeded number of write-ahead records, then resume a
    # fresh incarnation from the journal. With ``master_kill`` the kill is
    # unconditional (the CI cocktail); otherwise it joins ~40% of plans.
    kill_master_after = None
    journal_dir = None
    if master_kill or rng.random() < 0.4:
        # These scenarios journal roughly 15-30 records end to end; the
        # range keeps most kills actually firing mid-run while the high
        # tail doubles as a does-nothing-when-unfired check.
        kill_master_after = rng.randint(2, 18)
        journal_dir = tempfile.mkdtemp(prefix="repro-chaos-journal-")
    segment_dir = None
    if resident_bytes is not None:
        segment_dir = tempfile.mkdtemp(prefix="repro-chaos-segments-")
    plan_desc = (
        f"shards={shards} workers={workers} r={replication} "
        + (
            f"kill_shard={kill_shard}@compact:{kill_in_compaction}"
            if kill_in_compaction is not None
            else f"kill_shard={kill_shard}@{kill_ops}ops"
        )
        + (f" spill={resident_bytes}B" if resident_bytes is not None else "")
        + (" adaptive" if adaptive_run else "")
        + (f" kill_task={kill_task}" if kill_task else "")
        + (
            f" kill_master@{kill_master_after}rec"
            if kill_master_after is not None
            else ""
        )
    )
    plan_kwargs = dict(
        workers=workers,
        shards=shards,
        replication=replication,
        resident_bytes=resident_bytes,
        segment_dir=segment_dir,
        kill_shard=kill_shard,
        kill_shard_after_ops=kill_ops,
        kill_shard_in_compaction=kill_in_compaction,
        kill_task=kill_task,
        kill_after_chunks=rng.randint(1, 3),
        journal_dir=journal_dir,
        adaptive=adaptive_run,
        **kwargs,
    )
    runtime = DistRuntime(
        app, kill_master_after_records=kill_master_after, **plan_kwargs
    )
    recoveries = 0

    def settle_journal(failed: bool) -> str:
        # A failed plan's journal and segment directories are the
        # post-mortem: with REPRO_CHAOS_KEEP_JOURNALS set (CI points it
        # at an artifact directory) the snapshot + WAL — and, for spill
        # plans, every shard's sealed segments plus its consumed/dedup
        # index — of a failing run are preserved instead of deleted,
        # named by scenario and run index so the reproduce hint and the
        # artifact line up.
        keep_root = os.environ.get("REPRO_CHAOS_KEEP_JOURNALS")
        kept_notes = []
        for label, dirpath in (
            ("journal", journal_dir),
            ("segments", segment_dir),
        ):
            if dirpath is None:
                continue
            if failed and keep_root:
                os.makedirs(keep_root, exist_ok=True)
                kept = os.path.join(
                    keep_root, f"{scenario.name}-run{index}-{label}"
                )
                shutil.rmtree(kept, ignore_errors=True)
                shutil.move(dirpath, kept)
                kept_notes.append(f" {label} kept at {kept}")
            else:
                shutil.rmtree(dirpath, ignore_errors=True)
        return "".join(kept_notes)

    try:
        try:
            result = runtime.run(dict(inputs), timeout=180.0)
        except MasterKilled as exc:
            # The master died as planned; a fresh incarnation (same
            # plan, kill disarmed) adopts the surviving fleet from
            # the journal.
            successor = DistRuntime(
                app, kill_master_after_records=None, **plan_kwargs
            )
            result = successor.resume(exc.fleet, timeout=180.0)
            recoveries = result.master_recoveries
    except ReproError as exc:
        kept = settle_journal(failed=True)
        return False, (
            f"{scenario.name} dist run {index}: {plan_desc} "
            f"FAILED ({type(exc).__name__}: {exc}){kept}"
        )
    except BaseException:
        settle_journal(failed=True)
        raise
    sinks = _dist_sink_fingerprint(app.graph, result.records)
    diverged = sorted(
        bag_id
        for bag_id, expected in baseline_sinks.items()
        if sinks.get(bag_id) != expected
    )
    problems = list(diverged)
    # Replication's whole point: a shard kill with live copies must be
    # absorbed by failover, never replayed. Spill makes the same promise
    # at replication 1 — the respawn reopens its segment directory, so
    # nothing was lost and nothing replays. Worker kills still reset
    # their family (compute state is unreplicated), and a master kill
    # legitimately resets whatever the journal could not prove committed,
    # so only gate the plans with neither.
    if (
        (replication > 1 or resident_bytes is not None)
        and kill_task is None
        and kill_master_after is None
        and result.family_resets
    ):
        problems.append(f"RESETS({result.family_resets})")
    kept = settle_journal(failed=bool(problems))
    status = "ok" if not problems else f"DIVERGED({','.join(problems)})"
    line = (
        f"{scenario.name} dist run {index}: {plan_desc} "
        f"shard_deaths={result.shard_deaths} "
        f"worker_deaths={result.worker_deaths} "
        f"resets={result.family_resets} "
        f"recoveries={recoveries} {status}{kept}"
    )
    return not problems, line


def _main_dist(args) -> int:
    pool = dist_scenarios()
    if args.scenario is not None:
        pool = [s for s in pool if s.name == args.scenario]
    if not pool:
        print(f"chaos --dist: no dist scenario named {args.scenario!r}")
        return 2
    baselines: Dict[str, Dict[str, List[str]]] = {}
    failures = 0
    for index in range(args.runs):
        scenario = pool[index % len(pool)]
        if scenario.name not in baselines:
            baselines[scenario.name] = dist_baseline(scenario)
            sinks = baselines[scenario.name]
            print(
                f"{scenario.name} baseline: "
                f"{sum(len(v) for v in sinks.values())} sink records "
                f"in {len(sinks)} bags"
            )
        ok, line = fuzz_one_dist(
            scenario,
            baselines[scenario.name],
            args.seed,
            index,
            master_kill=args.master_kill,
            spill=args.spill,
            adaptive=args.adaptive,
        )
        print(f"[{index + 1:3d}/{args.runs}] {line}")
        if not ok:
            failures += 1
            print(
                f"    reproduce: --dist --seed {args.seed} --scenario "
                f"{scenario.name} (run index {index})"
            )
    verdict = "passed" if failures == 0 else f"{failures} FAILED"
    print(
        f"chaos --dist: {args.runs - failures}/{args.runs} runs {verdict} "
        f"(seed={args.seed})"
    )
    return 0 if failures == 0 else 1


# ---------------------------------------------------------------------------
# CLI


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Seeded fault-plan fuzzing with invariant checks.",
    )
    parser.add_argument("--seed", type=int, default=0, help="fuzzing seed")
    parser.add_argument(
        "--runs", type=int, default=25, help="number of fault plans to run"
    )
    parser.add_argument(
        "--scenario",
        choices=[s.name for s in scenarios()],
        default=None,
        help="restrict to one scenario (default: round-robin over all)",
    )
    parser.add_argument(
        "--skip-determinism",
        action="store_true",
        help="do not re-execute each plan to verify digest stability",
    )
    parser.add_argument(
        "--dist",
        action="store_true",
        help="fuzz the real multiprocess engine with shard/worker kills "
        "instead of the simulator",
    )
    parser.add_argument(
        "--master-kill",
        action="store_true",
        help="with --dist: kill the master in every plan (instead of "
        "~40%% of them) and resume it from its journal",
    )
    parser.add_argument(
        "--spill",
        action="store_true",
        help="with --dist: give every plan a tiny per-shard resident-bytes "
        "budget so the disk-backed segment layer is exercised under kills "
        "(otherwise ~1/3 of plans draw spill from the seed)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="with --dist: arm the closed-loop batch-depth controller and "
        "clone governor in every plan, so controller state must survive "
        "the kills (otherwise ~half of plans draw it from the seed)",
    )
    args = parser.parse_args(argv)

    if args.dist:
        return _main_dist(args)

    pool = scenarios()
    if args.scenario is not None:
        pool = [s for s in pool if s.name == args.scenario]
    baselines: Dict[str, Baseline] = {}
    failures = 0
    for index in range(args.runs):
        scenario = pool[index % len(pool)]
        if scenario.name not in baselines:
            baselines[scenario.name] = measure_baseline(scenario)
            base = baselines[scenario.name]
            print(
                f"{scenario.name} baseline: runtime={base.runtime:.1f}s "
                f"steps={base.steps} sinks={sum(base.sinks.values())}B"
            )
        outcome, line = fuzz_one(
            scenario,
            baselines[scenario.name],
            args.seed,
            index,
            verify_determinism=not args.skip_determinism,
        )
        print(f"[{index + 1:3d}/{args.runs}] {line}")
        if not outcome.ok:
            failures += 1
            for violation in outcome.violations:
                print(f"    invariant: {violation}")
            if outcome.error is None and outcome.violations:
                print(f"    reproduce: --seed {args.seed} --scenario "
                      f"{scenario.name} (run index {index})")
    verdict = "passed" if failures == 0 else f"{failures} FAILED"
    print(f"chaos: {args.runs - failures}/{args.runs} runs {verdict} "
          f"(seed={args.seed})")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
