"""Overload detection must also trigger on NIC saturation (Section 4.2)."""

import pytest

from repro.cluster.spec import ClusterSpec, MachineSpec
from repro.model import Application, TaskCost
from repro.runtime import HurricaneConfig, InputSpec
from repro.runtime.job import SimJob
from repro.units import GB, MB


def _skinny_nic_cluster(machines=8):
    """Plenty of disks, plenty of CPU, but a 150 MB/s NIC per direction —
    a worker pulling spread data saturates its inbound link long before
    its cores."""
    return ClusterSpec(
        machines=machines,
        machine=MachineSpec(nic_bandwidth=150 * MB),
    )


def _io_bound_app():
    app = Application("io-bound")
    src = app.bag("src")
    out = app.bag("out")
    app.task(
        "copy",
        [src],
        [out],
        phase="copy",
        # Nearly free CPU: the task is pure data movement.
        cost=TaskCost(cpu_seconds_per_mb=0.0005, output_ratio=0.05),
    )
    return app


def test_nic_saturation_triggers_cloning():
    app = _io_bound_app()
    job = SimJob(
        app.graph,
        {"src": InputSpec(8 * GB)},
        cluster_spec=_skinny_nic_cluster(),
        config=HurricaneConfig(),
    )
    report = job.run(timeout=3600)
    assert report.clones_granted >= 1
    # CPU was never the issue: demand stays far below the threshold, so the
    # grants can only have come from the NIC signal.
    assert report.clone_counts["copy"] >= 2


def test_nic_cloning_disabled_by_threshold():
    app = _io_bound_app()
    job = SimJob(
        app.graph,
        {"src": InputSpec(8 * GB)},
        cluster_spec=_skinny_nic_cluster(),
        config=HurricaneConfig(overload_nic=10.0),  # unreachable threshold
    )
    report = job.run(timeout=3600)
    assert report.clones_granted == 0
