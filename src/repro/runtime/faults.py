"""Fault injection (Section 4.4 / Figure 11).

A :class:`FaultPlan` schedules compute-node crashes, application-master
crashes, and storage-node crashes at fixed simulation times. The plan is
executed by injector processes inside :class:`~repro.runtime.job.SimJob`:

* a **compute crash** kills the node's task manager and all of its workers
  (the co-located storage node keeps serving, as in the paper's
  experiment); the master notices after ``crash_detect_timeout`` and
  restarts the affected task families;
* a **master crash** interrupts the master process; a recovery master is
  spawned after the crash and replays the work bags;
* a **storage crash** takes the machine's disk and NICs down; reads fail
  over to backup replicas when replication > 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class ComputeCrash:
    at: float
    node: int
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class MasterCrash:
    at: float


@dataclass(frozen=True)
class StorageCrash:
    at: float
    node: int
    restart_after: Optional[float] = None


@dataclass
class FaultPlan:
    compute_crashes: List[ComputeCrash] = field(default_factory=list)
    master_crashes: List[MasterCrash] = field(default_factory=list)
    storage_crashes: List[StorageCrash] = field(default_factory=list)

    def crash_compute(
        self, at: float, node: int, restart_after: Optional[float] = None
    ) -> "FaultPlan":
        self.compute_crashes.append(ComputeCrash(at, node, restart_after))
        return self

    def crash_master(self, at: float) -> "FaultPlan":
        self.master_crashes.append(MasterCrash(at))
        return self

    def crash_storage(
        self, at: float, node: int, restart_after: Optional[float] = None
    ) -> "FaultPlan":
        self.storage_crashes.append(StorageCrash(at, node, restart_after))
        return self

    def empty(self) -> bool:
        return not (self.compute_crashes or self.master_crashes or self.storage_crashes)
