"""Fault-tolerance tests: compute-node crashes and master crash/replay."""

import pytest

from repro.cluster.spec import paper_cluster
from repro.model import Application, TaskCost
from repro.runtime import FaultPlan, HurricaneConfig, InputSpec
from repro.runtime.job import SimJob
from repro.units import GB, MB


def _app(weights=(0.55, 0.25, 0.15, 0.05)):
    app = Application("faulty")
    src = app.bag("src")
    regions = [app.bag(f"region.{i}") for i in range(len(weights))]
    outs = [app.bag(f"out.{i}") for i in range(len(weights))]
    app.task(
        "map",
        [src],
        regions,
        phase="map",
        cost=TaskCost(
            cpu_seconds_per_mb=0.04,
            output_ratio=1.0,
            output_weights={f"region.{i}": w for i, w in enumerate(weights)},
        ),
    )
    for i in range(len(weights)):
        app.task(
            f"agg.{i}",
            [regions[i]],
            [outs[i]],
            merge="bitset_union",
            phase="agg",
            cost=TaskCost(
                cpu_seconds_per_mb=0.05, output_ratio=0.0, fixed_output_bytes=2 * MB
            ),
        )
    return app


def _run(fault_plan, input_gb=4, machines=8, **config_kwargs):
    app = _app()
    job = SimJob(
        app.graph,
        {"src": InputSpec(input_gb * GB)},
        cluster_spec=paper_cluster(machines),
        config=HurricaneConfig(**config_kwargs),
        fault_plan=fault_plan,
    )
    report = job.run(timeout=3600)
    return job, report


def test_clean_reference():
    job, report = _run(FaultPlan())
    assert report.runtime < 60


def test_compute_crash_job_still_completes():
    plan = FaultPlan().crash_compute(at=6.0, node=3, restart_after=4.0)
    job, report = _run(plan)
    assert job.exec.all_done()
    assert any(kind == "compute_crash" for _t, kind, _i in report.events)
    # Every output still produced despite the crash.
    for i in range(4):
        assert job.catalog.get(f"out.{i}").written_total() > 0


def test_compute_crash_restarts_affected_families():
    plan = FaultPlan().crash_compute(at=6.0, node=2, restart_after=4.0)
    job, report = _run(plan)
    restarts = [i for t, k, i in report.events if k == "family_restarted"]
    assert restarts, "the master should have reset at least one family"
    # Input of a restarted family was rewound and fully reprocessed.
    assert job.catalog.get("src").remaining_total() == 0


def test_compute_crash_without_restart_node_stays_dead():
    plan = FaultPlan().crash_compute(at=6.0, node=1)
    job, report = _run(plan)
    assert job.exec.all_done()
    assert 1 in job.crashed_compute
    assert 1 not in job.alive_compute_nodes()


def test_crash_slows_but_not_catastrophically():
    _job, clean = _run(FaultPlan())
    plan = FaultPlan().crash_compute(at=6.0, node=3, restart_after=4.0)
    _job2, faulty = _run(plan)
    assert faulty.runtime >= clean.runtime * 0.9
    assert faulty.runtime < clean.runtime * 4


def test_master_crash_recovers_by_replay():
    plan = FaultPlan().crash_master(at=7.0)
    job, report = _run(plan)
    kinds = [k for _t, k, _i in report.events]
    assert "master_crash" in kinds and "master_recovered" in kinds
    assert job.exec.all_done()
    for i in range(4):
        assert job.catalog.get(f"out.{i}").written_total() > 0


def test_master_crash_barely_affects_runtime():
    _job, clean = _run(FaultPlan())
    _job2, faulty = _run(FaultPlan().crash_master(at=7.0))
    # Workers proceed independently; recovery is sub-second.
    assert faulty.runtime < clean.runtime * 1.5


def test_master_crash_during_cloned_phase():
    """Replay must restore clone wiring (partial bags, merge nodes)."""
    app = _app(weights=(0.85, 0.05, 0.05, 0.05))
    plan = FaultPlan().crash_master(at=12.0)
    job = SimJob(
        app.graph,
        {"src": InputSpec(8 * GB)},
        cluster_spec=paper_cluster(8),
        config=HurricaneConfig(),
        fault_plan=plan,
    )
    report = job.run(timeout=3600)
    assert job.exec.all_done()
    assert report.clone_counts["agg.0"] >= 1
    assert job.catalog.get("out.0").written_total() > 0


def test_double_fault_sequence():
    """The Figure 11 scenario: two node crashes, two master crashes."""
    plan = (
        FaultPlan()
        .crash_compute(at=5.0, node=4, restart_after=3.0)
        .crash_master(at=9.0)
        .crash_compute(at=14.0, node=6, restart_after=3.0)
        .crash_master(at=18.0)
    )
    job, report = _run(plan, input_gb=8)
    assert job.exec.all_done()
    kinds = [k for _t, k, _i in report.events]
    assert kinds.count("compute_crash") == 2
    assert kinds.count("master_crash") == 2


def test_storage_crash_with_replication_survives():
    app = _app()
    plan = FaultPlan().crash_storage(at=6.0, node=5)
    job = SimJob(
        app.graph,
        {"src": InputSpec(2 * GB)},
        cluster_spec=paper_cluster(8),
        config=HurricaneConfig(replication=2),
        fault_plan=plan,
    )
    report = job.run(timeout=3600)
    assert job.exec.all_done()
    assert any(k == "storage_crash" for _t, k, _i in report.events)
