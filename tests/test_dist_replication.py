"""Replication protocol tests below the DistRuntime level.

Covers the pieces the end-to-end shard-kill tests exercise only in
aggregate: the replicated bag representation (id-keyed sets, removal-log
dedup, monotone snapshot merge), the primary gate and removal shipping on
real server processes, the client sweep's failover behavior, the fence
sweep's continue-past-dead-shards fix, and the empty-sample latency
percentile contract.
"""

import multiprocessing
import os

import pytest

from repro.dist.client import (
    BatchChunkFetcher,
    RemoteBagStore,
    ShardedBagStore,
    _parse_epoch_vector,
)
from repro.dist.replica import RepBag, RepBagStore
from repro.dist.runtime import _latency_percentiles
from repro.dist.server import storage_server_main
from repro.dist.sharding import ShardRouter
from repro.errors import BagSealedError, NotPrimary, StorageNodeDown
from repro.storage.policy import StorageConfig

CTX = multiprocessing.get_context("fork")
AUTHKEY = b"test-replication"

#: Snappy policy: these tests exercise failure paths on purpose, and the
#: production backoff schedule would turn each negative case into seconds
#: of sleeping.
QUICK = StorageConfig(
    rpc_retries=3, retry_backoff=0.01, backoff_multiplier=1.5, rpc_timeout=1.0
)


class _Shards:
    """A real replicated shard group: one server process per index."""

    def __init__(self, tmpdir, count, replication):
        self.paths = [os.path.join(tmpdir, f"shard-{i}.sock") for i in range(count)]
        self.replication = replication
        self.procs = [None] * count
        for index in range(count):
            self.spawn(index)

    def spawn(self, index, epochs=None):
        ready_parent, ready_child = CTX.Pipe(duplex=False)
        proc = CTX.Process(
            target=storage_server_main,
            args=(
                ready_child,
                AUTHKEY,
                index,
                self.paths[index],
                None,
                self.replication,
                list(self.paths),
                dict(epochs or {}),
            ),
            daemon=True,
        )
        proc.start()
        ready_child.close()
        assert ready_parent.poll(15.0), f"shard {index} did not start"
        ready_parent.recv()
        ready_parent.close()
        self.procs[index] = proc

    def kill(self, index):
        self.procs[index].terminate()
        self.procs[index].join(timeout=5.0)

    def store(self, client_id="tester"):
        return ShardedBagStore(
            self.paths,
            AUTHKEY,
            client_id,
            QUICK,
            router=ShardRouter(len(self.paths), self.replication),
        )

    def raw(self, index, client_id="raw"):
        return RemoteBagStore(self.paths[index], AUTHKEY, client_id, QUICK)

    def close(self):
        for proc in self.procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)


@pytest.fixture
def shards2(tmp_path):
    group = _Shards(str(tmp_path), 2, replication=2)
    yield group
    group.close()


class TestRepBag:
    def test_insert_is_idempotent_by_id(self):
        bag = RepBag("b")
        bag.insert_id("c#0", "alpha")
        bag.insert_id("c#0", "alpha")
        assert bag.remaining() == 1 and bag.size() == 1

    def test_sealed_insert_raises(self):
        bag = RepBag("b")
        bag.seal()
        with pytest.raises(BagSealedError):
            bag.insert_id("c#0", "x")

    def test_remove_batch_dedups_retried_seq(self):
        bag = RepBag("b")
        for i in range(4):
            bag.insert_id(f"c#{i}", i)
        first, _ = bag.remove_batch(2, "client", seq=1)
        again, _ = bag.remove_batch(2, "client", seq=1)  # retry, same seq
        assert again == first
        fresh, _ = bag.remove_batch(2, "client", seq=2)
        assert [cid for cid, _ in fresh] == ["c#2", "c#3"]
        assert bag.remaining() == 0 and bag.size() == 4

    def test_empty_reply_is_not_recorded_in_dedup(self):
        # remove_batch deliberately skips the dedup record when it pops
        # nothing (the ``if pairs:`` guard): serving [] mutates no state,
        # so a retry of the same seq must see chunks that arrived in
        # between rather than a pinned empty reply — recording [] would
        # starve a retrying client forever on a slow-filling bag.
        bag = RepBag("b")
        served, sealed = bag.remove_batch(2, "client", seq=1)
        assert served == [] and not sealed
        bag.insert_id("c#0", "late")
        retry, _ = bag.remove_batch(2, "client", seq=1)
        assert retry == [("c#0", "late")]
        # Once a non-empty serve lands, the same seq is exactly-once.
        again, _ = bag.remove_batch(2, "client", seq=1)
        assert again == retry

    def test_apply_removals_lands_before_insert(self):
        # A shipped removal can outrun the insert fan-out: the payload
        # travels with it, the chunk lands consumed, the late insert is
        # a dedup no-op (not a resurrection into pending).
        bag = RepBag("b")
        bag.apply_removals("client", 1, [("c#0", "early")], sealed=False)
        bag.insert_id("c#0", "early")
        assert bag.remaining() == 0
        assert bag.read_all() == ["early"]

    def test_apply_removals_keeps_highest_seq(self):
        bag = RepBag("b")
        bag.apply_removals("client", 2, [("c#1", "two")], sealed=False)
        bag.apply_removals("client", 1, [("c#0", "one")], sealed=False)
        # Both chunk moves applied; the dedup tail stays at seq 2.
        assert bag.size() == 2
        pairs, _ = bag.remove_batch(5, "client", seq=2)
        assert pairs == [("c#1", "two")]

    def test_rewind_restores_everything(self):
        bag = RepBag("b")
        for i in range(3):
            bag.insert_id(f"c#{i}", i)
        bag.remove_batch(2, "client", seq=1)
        bag.rewind()
        assert bag.remaining() == 3
        # Post-rewind the removal log is void: same seq pops fresh.
        pairs, _ = bag.remove_batch(3, "client", seq=1)
        assert len(pairs) == 3

    def test_merge_snapshot_is_monotone(self):
        source = RepBag("b")
        for i in range(3):
            source.insert_id(f"c#{i}", i)
        source.remove_batch(1, "client", seq=5)
        source.seal()
        target = RepBag("b")
        target.insert_id("c#0", 0)  # already has a pending copy of c#0
        target.apply_removals("client", 3, [("c#2", 2)], sealed=False)
        target.merge_snapshot(source.snapshot())
        # Consumed wins over pending: c#0 (consumed at source) must not
        # stay deliverable at the target; c#2 (consumed locally) must not
        # be resurrected by the snapshot's pending copy.
        assert target.remaining() == 1  # only c#1
        assert target.sealed
        # Dedup: the snapshot's seq 5 tail replaced the local seq 3 one.
        pairs, _ = target.remove_batch(5, "client", seq=5)
        assert pairs == [("c#0", 0)]

    def test_store_snapshot_roundtrip(self):
        store = RepBagStore()
        store.ensure("a").insert_id("c#0", "x")
        store.ensure("b").seal()
        other = RepBagStore()
        other.merge_many(store.snapshot_many(["a", "b"]))
        assert other.get("a").remaining() == 1
        assert other.get("b").sealed


class TestPrimaryGate:
    def test_backup_refuses_with_epoch_vector(self, shards2):
        store = shards2.store()
        bag_id = "gate-bag"
        backup = store.router.replicas(bag_id)[1]
        store.get(bag_id).insert(["r0"])
        raw = shards2.raw(backup)
        with pytest.raises(NotPrimary) as excinfo:
            raw.call("rremove_batch", bag_id, 1, "tester", 1)
        assert _parse_epoch_vector(str(excinfo.value)) == {}
        raw.close()
        store.close()

    def test_shipping_consumes_on_backup_before_reply(self, shards2):
        store = shards2.store()
        bag_id = "ship-bag"
        for i in range(3):
            store.get(bag_id).insert([i])
        chunks, _sealed = store.get(bag_id).remove_batch(2)
        assert len(chunks) == 2
        # The backup's copy shows the same chunks consumed already.
        backup = store.router.replicas(bag_id)[1]
        snap = store.sync_pull(backup, [bag_id])[bag_id]
        assert len(snap["consumed"]) == 2 and len(snap["pending"]) == 1
        store.close()

    def test_promoted_backup_answers_retry_from_shipped_log(self, shards2):
        store = shards2.store()
        bag_id = "promote-bag"
        for i in range(4):
            store.get(bag_id).insert([i])
        primary, backup = store.router.replicas(bag_id)
        served = shards2.raw(primary, "consumer").call(
            "rremove_batch", bag_id, 2, "consumer", 1
        )
        # The primary dies before its client saw the reply; the master
        # promotes the backup. The client's retry carries the same seq...
        shards2.kill(primary)
        epochs = {primary: 1}
        store.push_epochs(backup, epochs)
        retry = shards2.raw(backup, "consumer").call(
            "rremove_batch", bag_id, 2, "consumer", 1
        )
        # ...and gets the recorded removal, not two fresh chunks.
        assert retry == served
        follow, _ = shards2.raw(backup, "consumer2").call(
            "rremove_batch", bag_id, 4, "consumer", 2
        ), None
        chunks, _sealed = follow
        assert len(chunks) == 2  # only the two never-served chunks remain
        store.close()


class TestClientSweep:
    def test_sweep_fails_over_to_promoted_backup(self, shards2):
        store = shards2.store()
        bag_id = "failover-bag"
        for i in range(6):
            store.get(bag_id).insert([i])
        store.get(bag_id).seal()
        primary, backup = store.router.replicas(bag_id)
        shards2.kill(primary)
        store.push_epochs(backup, {primary: 1})
        # The client was never told: its sweep discovers the death, adopts
        # the promotion, and drains the bag from the backup.
        seen = []
        while True:
            chunks, sealed = store.get(bag_id).remove_batch(2)
            seen.extend(chunks)
            if not chunks and sealed:
                break
        assert len(seen) == 6
        assert store.serving_order(bag_id)[0] == backup
        store.close()

    def test_replicated_fetcher_survives_primary_death(self, shards2):
        store = shards2.store()
        bag_id = "fetch-bag"
        for i in range(20):
            store.get(bag_id).insert([i])
        store.get(bag_id).seal()
        primary, backup = store.router.replicas(bag_id)
        fetcher = BatchChunkFetcher.for_bag(store, bag_id, batch=2, policy=QUICK)
        got = [fetcher.get(timeout=5.0)]
        shards2.kill(primary)
        store.push_epochs(backup, {primary: 1})
        while True:
            chunk = fetcher.get(timeout=5.0)
            if chunk is None:
                break
            got.append(chunk)
        fetcher.stop()
        assert sorted(value for [value] in got) == list(range(20))
        store.close()

    def test_sweep_exhaustion_raises_storage_down(self, shards2):
        store = shards2.store()
        bag_id = "doomed-bag"
        store.get(bag_id).insert(["x"])
        shards2.kill(0)
        shards2.kill(1)
        with pytest.raises(StorageNodeDown):
            store.get(bag_id).remove_batch(1)
        store.close()

    def test_epoch_vector_parsing(self):
        assert _parse_epoch_vector("{0: 2, 1: 1}") == {0: 2, 1: 1}
        assert _parse_epoch_vector("{}") == {}
        assert _parse_epoch_vector("not a dict") == {}
        assert _parse_epoch_vector("[1, 2]") == {}


class TestFenceSweep:
    def test_fence_continues_past_dead_shard(self, tmp_path):
        # Shard 0's socket path never gets a listener (a corpse); shard 1
        # is alive. The regression: fence used to raise on shard 0 and
        # never reach shard 1, leaving it unfenced while recovery
        # proceeded as if the corpse's writes were all applied.
        group = _Shards(str(tmp_path), 2, replication=1)
        try:
            group.kill(0)
            os.unlink(group.paths[0])
            store = ShardedBagStore(group.paths, AUTHKEY, "master", QUICK)
            with pytest.raises(StorageNodeDown) as excinfo:
                store.fence("worker-9", 0.2)
            assert "0" in str(excinfo.value)
            # The live shard WAS fenced despite the earlier failure.
            stats = group.raw(1).call("stats")
            assert stats.get("fence", 0) >= 1
            store.close()
        finally:
            group.close()

    def test_fence_all_live_sums_leftovers(self, tmp_path):
        group = _Shards(str(tmp_path), 2, replication=1)
        try:
            store = ShardedBagStore(group.paths, AUTHKEY, "master", QUICK)
            assert store.fence("worker-0", 0.2) == 0
            store.close()
        finally:
            group.close()


class TestEmptyPercentiles:
    def test_empty_samples_yield_none_not_zero(self):
        summary = _latency_percentiles([])
        assert summary["count"] == 0
        assert summary["p50_ms"] is None
        assert summary["p90_ms"] is None
        assert summary["p99_ms"] is None
        assert summary["max_ms"] is None

    def test_nonempty_samples_unchanged(self):
        summary = _latency_percentiles([0.001, 0.002, 0.003])
        assert summary["count"] == 3
        assert summary["p50_ms"] == 2.0
        assert summary["max_ms"] == 3.0

    def test_two_samples_p50_is_lower_rank(self):
        # Nearest-rank: the p50 of two samples is the first (ceil(0.5*2)
        # = rank 1), not the max. The old int(p*n) indexing returned the
        # max here, inflating every small-sample median.
        summary = _latency_percentiles([0.001, 0.009])
        assert summary["p50_ms"] == 1.0
        assert summary["p90_ms"] == 9.0

    def test_single_sample_every_percentile_is_it(self):
        summary = _latency_percentiles([0.004])
        assert summary["count"] == 1
        assert summary["p50_ms"] == 4.0
        assert summary["p90_ms"] == 4.0
        assert summary["p99_ms"] == 4.0
        assert summary["max_ms"] == 4.0

    def test_hundred_samples_hit_exact_ranks(self):
        # n=100 makes nearest-rank exact: p50 = 50th value (1-based),
        # p90 = 90th, p99 = 99th.
        summary = _latency_percentiles([i / 1000.0 for i in range(1, 101)])
        assert summary["p50_ms"] == 50.0
        assert summary["p90_ms"] == 90.0
        assert summary["p99_ms"] == 99.0
        assert summary["max_ms"] == 100.0
