"""Integration tests for the simulated Hurricane runtime."""

import pytest

from repro.cluster.spec import paper_cluster
from repro.errors import JobTimeout, SchedulingError
from repro.model import Application, TaskCost
from repro.runtime import HurricaneConfig, InputSpec
from repro.runtime.job import SimJob, run_app
from repro.units import GB, MB


def _pipeline_app(weights=(0.55, 0.25, 0.15, 0.05)):
    """A small ClickLog-shaped app: map -> skewed aggregations -> counts."""
    app = Application("pipeline")
    src = app.bag("src")
    regions = [app.bag(f"region.{i}") for i in range(len(weights))]
    outs = [app.bag(f"out.{i}") for i in range(len(weights))]
    app.task(
        "map",
        [src],
        regions,
        phase="map",
        cost=TaskCost(
            cpu_seconds_per_mb=0.04,
            output_ratio=1.0,
            output_weights={f"region.{i}": w for i, w in enumerate(weights)},
        ),
    )
    for i in range(len(weights)):
        app.task(
            f"agg.{i}",
            [regions[i]],
            [outs[i]],
            merge="bitset_union",
            phase="agg",
            cost=TaskCost(
                cpu_seconds_per_mb=0.05, output_ratio=0.0, fixed_output_bytes=4 * MB
            ),
        )
    return app


def test_job_completes_and_reports():
    report = run_app(
        _pipeline_app(), {"src": InputSpec(2 * GB)}, machines=8, timeout=3600
    )
    assert report.runtime > 0
    assert set(report.phases) == {"map", "agg"}
    assert report.phases["map"][1] <= report.phases["agg"][1]
    assert report.bytes_read > 2 * GB  # input + intermediate reads
    assert report.timeline  # throughput was recorded


def test_all_input_consumed_and_outputs_produced():
    app = _pipeline_app()
    job = SimJob(
        app.graph,
        {"src": InputSpec(1 * GB)},
        cluster_spec=paper_cluster(4),
        config=HurricaneConfig(),
    )
    job.run(timeout=3600)
    assert job.catalog.get("src").remaining_total() == 0
    for i in range(4):
        assert job.catalog.get(f"out.{i}").written_total() > 0
        assert job.catalog.get(f"region.{i}").remaining_total() == 0


def test_cloning_engages_on_skew():
    report = run_app(
        _pipeline_app(weights=(0.85, 0.05, 0.05, 0.05)),
        {"src": InputSpec(6 * GB)},
        machines=8,
        timeout=3600,
    )
    assert report.clones_granted >= 1
    assert report.clone_counts["agg.0"] >= 2  # the heavy aggregation cloned
    grants = [info for _t, kind, info in report.events if kind == "clone_granted"]
    assert any(g["task"] == "agg.0" for g in grants)


def test_cloning_disabled_runs_single_workers():
    report = run_app(
        _pipeline_app(),
        {"src": InputSpec(2 * GB)},
        machines=8,
        config=HurricaneConfig(cloning_enabled=False),
        timeout=3600,
    )
    assert report.clones_granted == 0
    assert all(count == 1 for count in report.clone_counts.values())


def test_cloning_speeds_up_skewed_run():
    app_inputs = {"src": InputSpec(8 * GB)}
    slow = run_app(
        _pipeline_app(weights=(0.85, 0.05, 0.05, 0.05)),
        app_inputs,
        machines=8,
        config=HurricaneConfig(cloning_enabled=False),
        timeout=3600,
    )
    fast = run_app(
        _pipeline_app(weights=(0.85, 0.05, 0.05, 0.05)),
        app_inputs,
        machines=8,
        config=HurricaneConfig(cloning_enabled=True),
        timeout=3600,
    )
    assert fast.runtime < slow.runtime


def test_merge_runs_once_per_cloned_family():
    app = _pipeline_app(weights=(0.85, 0.05, 0.05, 0.05))
    job = SimJob(
        app.graph,
        {"src": InputSpec(6 * GB)},
        cluster_spec=paper_cluster(8),
        config=HurricaneConfig(),
    )
    report = job.run(timeout=3600)
    family = job.exec.families["agg.0"]
    assert report.clone_counts["agg.0"] >= 2
    assert family.merge is not None and family.finished
    # The merged output bag holds exactly the merged bitset.
    assert job.catalog.get("out.0").written_total() == 4 * MB


def test_missing_input_spec_rejected():
    app = _pipeline_app()
    with pytest.raises(SchedulingError, match="no InputSpec"):
        SimJob(app.graph, {}, cluster_spec=paper_cluster(2))


def test_timeout_raises_jobtimeout():
    app = _pipeline_app()
    job = SimJob(
        app.graph,
        {"src": InputSpec(10 * GB)},
        cluster_spec=paper_cluster(2),
        config=HurricaneConfig(),
    )
    with pytest.raises(JobTimeout):
        job.run(timeout=1.0)


def test_local_placement_concentrates_input():
    app = _pipeline_app()
    job = SimJob(
        app.graph,
        {"src": InputSpec(1 * GB, placement=2)},
        cluster_spec=paper_cluster(4),
        config=HurricaneConfig(spread_data=False),
    )
    assert job.catalog.get("src").shard_bytes(2) == 1 * GB
    assert job.catalog.get("src").shard_bytes(0) == 0
    job.run(timeout=3600)


def test_granularity_preserves_results():
    app_inputs = {"src": InputSpec(2 * GB)}
    fine = run_app(
        _pipeline_app(), app_inputs, machines=4,
        config=HurricaneConfig(granularity=1), timeout=3600,
    )
    coarse = run_app(
        _pipeline_app(), app_inputs, machines=4,
        config=HurricaneConfig(granularity=8), timeout=3600,
    )
    # Same workload, same rough runtime (fidelity knob, not a semantics knob).
    assert coarse.runtime == pytest.approx(fine.runtime, rel=0.35)
