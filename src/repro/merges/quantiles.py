"""Mergeable quantile estimation and uniform sampling.

Two more members of the paper's "tasks that need real merges" class
(Section 2.3 names unique counts, medians, sketches):

* :class:`QuantileSketch` — a GK-flavoured compacting sketch: keeps a
  bounded number of weighted samples per level; merging concatenates
  levels and re-compacts, so clone partials reconcile to a sketch whose
  rank error stays bounded by ~1/k per compaction level.
* :class:`ReservoirSample` — Algorithm-R reservoir with weighted merge:
  the merged reservoir is distributed as a uniform sample of the
  concatenated streams.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional, Sequence, Tuple

from repro.sim.rand import rng_from


class QuantileSketch:
    """A simple compacting (KLL-style) quantile sketch.

    ``k`` bounds the buffer per level; error grows slowly with compactions.
    Exact while fewer than ``k`` items have been seen.
    """

    def __init__(self, k: int = 128, seed: int = 17):
        if k < 8:
            raise ValueError(f"k must be >= 8, got {k}")
        self.k = k
        self.seed = seed
        #: levels[i] holds sorted values, each representing 2**i originals.
        self._levels: List[List[float]] = [[]]
        self.count = 0
        self._rng = rng_from("quantile-sketch", k, seed)

    def add(self, value: float) -> None:
        insort(self._levels[0], value)
        self.count += 1
        self._compact()

    def _compact(self) -> None:
        level = 0
        while level < len(self._levels):
            buffer = self._levels[level]
            if len(buffer) <= self.k:
                level += 1
                continue
            if level + 1 == len(self._levels):
                self._levels.append([])
            # Keep alternate elements (random phase), promote the rest.
            phase = self._rng.randrange(2)
            survivors = buffer[phase::2]
            for value in survivors:
                insort(self._levels[level + 1], value)
            self._levels[level] = []
            level += 1

    def _weighted(self) -> List[Tuple[float, int]]:
        out: List[Tuple[float, int]] = []
        for level, buffer in enumerate(self._levels):
            weight = 1 << level
            out.extend((value, weight) for value in buffer)
        out.sort()
        return out

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty sketch")
        target = q * self.count
        seen = 0
        weighted = self._weighted()
        for value, weight in weighted:
            seen += weight
            if seen >= target:
                return value
        return weighted[-1][0]

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        if self.k != other.k:
            raise ValueError(f"cannot merge sketches with k={self.k} and k={other.k}")
        merged = QuantileSketch(self.k, self.seed)
        merged.count = self.count + other.count
        depth = max(len(self._levels), len(other._levels))
        merged._levels = [[] for _ in range(depth)]
        for source in (self, other):
            for level, buffer in enumerate(source._levels):
                for value in buffer:
                    insort(merged._levels[level], value)
        merged._compact()
        return merged


def quantile_merge(a: QuantileSketch, b: QuantileSketch) -> QuantileSketch:
    return a.merge(b)


class ReservoirSample:
    """Algorithm-R reservoir sampling with a weighted, distribution-correct
    merge: each slot of the merged reservoir draws from either side with
    probability proportional to the side's stream length."""

    def __init__(self, capacity: int, seed: int = 23, label: object = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self.items: List = []
        self.count = 0
        self._rng = rng_from("reservoir", capacity, seed, label)

    def add(self, item) -> None:
        self.count += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return
        index = self._rng.randrange(self.count)
        if index < self.capacity:
            self.items[index] = item

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        if self.capacity != other.capacity:
            raise ValueError("cannot merge reservoirs of different capacity")
        merged = ReservoirSample(
            self.capacity, self.seed, label=(self.count, other.count)
        )
        merged.count = self.count + other.count
        pool_self = list(self.items)
        pool_other = list(other.items)
        for _ in range(min(self.capacity, merged.count)):
            take_self = False
            total = self.count + other.count
            if pool_self and pool_other:
                take_self = merged._rng.random() < self.count / total
            elif pool_self:
                take_self = True
            if take_self and pool_self:
                merged.items.append(
                    pool_self.pop(merged._rng.randrange(len(pool_self)))
                )
            elif pool_other:
                merged.items.append(
                    pool_other.pop(merged._rng.randrange(len(pool_other)))
                )
        return merged


def reservoir_merge(a: ReservoirSample, b: ReservoirSample) -> ReservoirSample:
    return a.merge(b)
