"""Client side of the storage protocol: bag proxies and batch sampling.

:class:`RemoteBagStore` mimics the
:class:`~repro.storage.local.LocalBagStore` surface over one storage
connection; :class:`ShardedBagStore` composes ``m`` of them behind a
:class:`~repro.dist.sharding.ShardRouter`, so the engine-agnostic helpers
in :mod:`repro.engine.common` (and the shared
:class:`~repro.local.context.TaskContext`) work unchanged in worker and
master processes whether the storage tier is one process or ``m``.

:class:`BatchChunkFetcher` is the paper's batch-sampling access path
(Section 4.2, Eq. 1): instead of one round trip per chunk, a prefetch
thread on its own connection requests up to ``b`` chunks per RPC and
keeps a buffer of ``b`` chunks ahead of the consuming task — while the
task burns CPU on buffered chunks, the next batch is already in flight,
hiding the chunk-service latency that Eq. 1 charges per request. With
``m`` shards, each fetcher connects to the shard homing its bag, so a
worker running a task plus prefetch keeps its outstanding ``remove_batch``
RPCs spread over the shards its bags land on — Eq. 1's ``m`` made real.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import repro.errors as errors_mod
from repro.dist.protocol import DIST_STORAGE_POLICY, StorageAddress, connect_with_retry
from repro.dist.sharding import ShardRouter
from repro.errors import StorageNodeDown
from repro.storage.policy import StorageConfig

#: Sentinel queued by the fetcher when the bag is drained and sealed.
_EOF = object()

#: Poll interval while a streamed bag is empty but not yet sealed (only
#: possible for bags filled concurrently; scheduled tasks stream sealed
#: bags, so this path is a safety net, not a hot loop).
_UNSEALED_POLL_SECONDS = 0.005


class RemoteBag:
    """Proxy for one bag hosted by the storage shard that homes it."""

    def __init__(self, store: "RemoteBagStore", bag_id: str):
        self.bag_id = bag_id
        self._store = store

    def insert(self, chunk: Any) -> None:
        self._store.call("insert", self.bag_id, chunk)

    def remove(self) -> Optional[Any]:
        chunk, _sealed = self._store.call("remove", self.bag_id)
        return chunk

    def remove_batch(self, count: int) -> Tuple[List[Any], bool]:
        return self._store.call("remove_batch", self.bag_id, count)

    def read_all(self) -> List[Any]:
        return self._store.call("read_all", self.bag_id)

    def seal(self) -> None:
        self._store.call("seal", self.bag_id)

    def remaining(self) -> int:
        return self._store.call("remaining", self.bag_id)

    def rewind(self) -> None:
        self._store.call("rewind", self.bag_id)

    def discard(self) -> None:
        self._store.call("discard", self.bag_id)

    def size(self) -> int:
        return self._store.call("size", self.bag_id)


class RemoteBagStore:
    """A LocalBagStore-compatible facade over one shard connection.

    Thread-safe: a lock serializes the send/recv pair. Connection
    establishment retries per the storage policy; a failure *mid-call*
    raises :class:`~repro.errors.StorageNodeDown` instead of retrying,
    because mutating ops (insert, remove_batch) are not idempotent. The
    broken socket is closed and dropped, so the *next* call reconnects
    (with retry/backoff) — which is how clients ride out a shard respawn.
    """

    def __init__(
        self,
        address: StorageAddress,
        authkey: bytes,
        client_id: str,
        policy: StorageConfig = DIST_STORAGE_POLICY,
    ):
        self.address = address
        self.authkey = authkey
        self.client_id = client_id
        self.policy = policy
        self._conn = None
        self._lock = threading.Lock()

    def _ensure_conn(self):
        if self._conn is None:
            try:
                conn = connect_with_retry(self.address, self.authkey, self.policy)
                conn.send(("hello", self.client_id))
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                # A shard dying mid-handshake surfaces as EOFError (not an
                # OSError) from the auth exchange; normalize so callers see
                # the one storage-failure type they know how to recover.
                self._drop_conn_locked()
                raise StorageNodeDown(
                    f"storage shard unreachable during handshake "
                    f"(address {self.address!r}): {exc}"
                ) from exc
            if status != "ok":
                conn.close()
                raise StorageNodeDown(f"storage handshake failed: {payload}")
            self._conn = conn
        return self._conn

    def _drop_conn_locked(self) -> None:
        # Close before dropping: leaving the broken socket open would leak
        # one fd per failure, and a long run with shard respawns makes
        # failures routine rather than fatal.
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def call(self, op: str, *args: Any) -> Any:
        with self._lock:
            conn = self._ensure_conn()
            try:
                conn.send((op,) + args)
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                self._drop_conn_locked()
                raise StorageNodeDown(
                    f"storage shard unreachable during {op!r} "
                    f"(address {self.address!r}): {exc}"
                ) from exc
            if status == "err":
                exc_name, message = payload
                exc_type = getattr(errors_mod, exc_name, None)
                if exc_type is None or not isinstance(exc_type, type):
                    exc_type = errors_mod.ReproError
                raise exc_type(message)
            return payload

    def invalidate(self) -> None:
        """Drop the cached connection (the shard behind it was replaced)."""
        with self._lock:
            self._drop_conn_locked()

    # -- LocalBagStore surface ------------------------------------------------

    def ensure(self, bag_id: str) -> RemoteBag:
        return RemoteBag(self, bag_id)

    def get(self, bag_id: str) -> RemoteBag:
        # Server-side ops auto-ensure; get/ensure are aliases here.
        return RemoteBag(self, bag_id)

    def close(self) -> None:
        with self._lock:
            self._drop_conn_locked()


class ShardedBagStore:
    """LocalBagStore-compatible facade over ``m`` storage shards.

    Holds one lazily-connected :class:`RemoteBagStore` per shard and
    routes every bag operation through a :class:`ShardRouter`, so callers
    (the engine-agnostic helpers, ``TaskContext``, the master) never see
    the sharding. Fan-out operations — ``stats``, ``fence``, ``shutdown``,
    ``remaining_many`` — address all shards explicitly.
    """

    def __init__(
        self,
        addresses: Sequence[StorageAddress],
        authkey: bytes,
        client_id: str,
        policy: StorageConfig = DIST_STORAGE_POLICY,
        router: Optional[ShardRouter] = None,
    ):
        if not addresses:
            raise ValueError("ShardedBagStore needs at least one shard address")
        self.addresses = list(addresses)
        self.router = router if router is not None else ShardRouter(len(addresses))
        if self.router.shards != len(self.addresses):
            raise ValueError(
                f"router covers {self.router.shards} shards but "
                f"{len(self.addresses)} addresses were given"
            )
        self.client_id = client_id
        self.stores = [
            RemoteBagStore(address, authkey, client_id, policy)
            for address in self.addresses
        ]

    @property
    def shards(self) -> int:
        return len(self.stores)

    def shard_of(self, bag_id: str) -> int:
        return self.router.home(bag_id)

    def address_of(self, bag_id: str) -> StorageAddress:
        return self.addresses[self.shard_of(bag_id)]

    def store_for(self, bag_id: str) -> RemoteBagStore:
        return self.stores[self.shard_of(bag_id)]

    # -- LocalBagStore surface ------------------------------------------------

    def ensure(self, bag_id: str) -> RemoteBag:
        return self.store_for(bag_id).ensure(bag_id)

    def get(self, bag_id: str) -> RemoteBag:
        return self.store_for(bag_id).get(bag_id)

    # -- fan-out operations -----------------------------------------------------

    def remaining_many(self, bag_ids: Iterable[str]) -> Dict[str, int]:
        """Remaining-chunk counts for ``bag_ids``, one RPC per shard hit."""
        merged: Dict[str, int] = {}
        for shard, group in sorted(self.router.partition(bag_ids).items()):
            merged.update(self.stores[shard].call("remaining_many", group))
        return merged

    def stats(self) -> List[Dict[str, int]]:
        """Per-shard op-counter snapshots, indexed by shard."""
        return [store.call("stats") for store in self.stores]

    def fence(self, client_id: str, timeout: Optional[float]) -> int:
        """Fence ``client_id`` on **every** shard; returns leftover conns.

        A dead worker may have had connections open to any subset of the
        shards (store proxy plus one fetcher per streamed bag), so the
        single-server fence generalizes to all-shards: recovery may only
        proceed once no shard still holds an undrained connection of the
        corpse.
        """
        leftover = 0
        for store in self.stores:
            leftover += store.call("fence", client_id, timeout)
        return leftover

    def shutdown(self) -> None:
        for store in self.stores:
            try:
                store.call("shutdown")
            except (errors_mod.ReproError, StorageNodeDown):
                pass  # already dead; the master reaps the process anyway

    def invalidate(self, shard: int) -> None:
        """Drop the cached connection to ``shard`` (it was respawned)."""
        self.stores[shard].invalidate()

    def close(self) -> None:
        for store in self.stores:
            store.close()


class BatchChunkFetcher:
    """Prefetching chunk client for one stream-input bag.

    A daemon thread on a dedicated connection — to the shard homing the
    bag — issues ``remove_batch`` RPCs of ``batch`` chunks and feeds a
    bounded queue; :meth:`get` returns the next chunk or ``None`` at
    end-of-bag. Per-RPC latency samples (seconds) accumulate in
    :attr:`latencies`, tagged with :attr:`shard` for the benchmark's
    per-shard chunk-service percentiles.
    """

    def __init__(
        self,
        address: StorageAddress,
        authkey: bytes,
        client_id: str,
        bag_id: str,
        batch: int,
        policy: StorageConfig = DIST_STORAGE_POLICY,
        shard: int = 0,
    ):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.bag_id = bag_id
        self.batch = batch
        self.shard = shard
        self.latencies: List[float] = []
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=batch)
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._store = RemoteBagStore(address, authkey, client_id, policy)
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"fetch-{bag_id}"
        )
        self._thread.start()

    @classmethod
    def for_bag(
        cls,
        store: ShardedBagStore,
        bag_id: str,
        batch: int,
        policy: StorageConfig = DIST_STORAGE_POLICY,
    ) -> "BatchChunkFetcher":
        """Fetcher wired to the shard that homes ``bag_id``.

        The pre-sharding code connected every fetcher to *the* server
        address; this constructor is the routed replacement — connecting a
        fetcher to any other shard would stream an eternally-empty bag.
        """
        return cls(
            store.address_of(bag_id),
            store.stores[0].authkey,
            store.client_id,
            bag_id,
            batch,
            policy,
            shard=store.shard_of(bag_id),
        )

    def _run(self) -> None:
        bag = self._store.get(self.bag_id)
        try:
            while not self._stop.is_set():
                started = time.perf_counter()
                chunks, sealed = bag.remove_batch(self.batch)
                self.latencies.append(time.perf_counter() - started)
                if not chunks:
                    if sealed:
                        self._put(_EOF)
                        return
                    time.sleep(_UNSEALED_POLL_SECONDS)
                    continue
                for chunk in chunks:
                    self._put(chunk)
        except BaseException as exc:
            self._error = exc
            self._put(_EOF)
        finally:
            self._store.close()

    def _put(self, item: Any) -> None:
        # Bounded put that gives up when the consumer stopped listening.
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next chunk, or ``None`` once the bag is drained and sealed."""
        item = self._queue.get(timeout=timeout)
        if item is _EOF:
            if self._error is not None:
                raise self._error
            return None
        return item

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
