"""Export experiment rows to CSV or JSON for external plotting."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Optional, Union


def rows_to_csv(rows: List[dict], path: Optional[Union[str, Path]] = None) -> str:
    """Serialize row dicts to CSV; optionally also write to ``path``."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def rows_to_json(rows: List[dict], path: Optional[Union[str, Path]] = None) -> str:
    """Serialize row dicts to pretty JSON; optionally also write to ``path``."""
    text = json.dumps(rows, indent=2, default=_jsonable)
    if path is not None:
        Path(path).write_text(text)
    return text


def _jsonable(value):
    if isinstance(value, (set, tuple)):
        return list(value)
    return str(value)
