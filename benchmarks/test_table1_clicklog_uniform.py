"""Table 1: ClickLog runtime on uniform inputs, 320MB .. 3.2TB.

Shape checks: runtime grows monotonically with input size; in-memory sizes
are overhead-dominated (strongly sub-linear scaling); on-disk sizes scale
almost linearly at aggregate disk bandwidth; every row is within ~2x of
the paper's absolute number.
"""

from conftest import show

from repro.experiments.table1 import run_table1


def test_table1(once):
    rows = once(run_table1)
    show("Table 1 — ClickLog uniform runtimes", rows)
    runtimes = [row["measured_s"] for row in rows]
    assert runtimes == sorted(runtimes), "runtime must grow with input size"
    for row in rows:
        assert 0.4 < row["ratio"] < 2.0, f"off-shape row: {row}"
    # Sub-linear in memory: 10x input from 320MB to 3.2GB costs < 4x time.
    assert runtimes[1] / runtimes[0] < 4.0
    # Near-linear on disk: 32GB -> 320GB is 10x data and 3.5x..11x time.
    assert 3.5 < runtimes[3] / runtimes[2] < 11.0
