"""Wire protocol shared by the dist master, workers, and storage server.

Two channels exist:

* **command channel** (master <-> worker, a duplex ``multiprocessing``
  pipe): the master sends ``{"type": "run" | "cancel" | "shutdown"}``
  dicts; workers answer with ``hello`` / ``progress`` / ``done`` /
  ``aborted`` / ``failed`` dicts. Messages are whole pickled objects, so
  framing is atomic.
* **storage channel** (any process -> a storage shard, a Unix-domain
  socket; with ``m`` shards there are ``m`` such sockets on stable
  master-chosen paths). A Unix socket (not localhost TCP) because
  ``multiprocessing`` sends large messages as separate header/body
  writes, which interacts with Nagle + delayed-ACK on TCP to add ~40ms
  per chunk RPC. Clients speak the **multiplexed** dialect: the first
  message after the auth handshake is ``("mux", client_id)``, and after
  the ``("ok", _)`` ack both sides switch from whole-pickled-message
  exchange to the raw frame stream below. One connection per
  (process, shard) pair then carries every caller's traffic
  concurrently. (The legacy one-exchange-per-call dialect — a
  ``("hello", client_id)`` introduction followed by strictly
  alternating ``(op, *args)`` / ``("ok", payload)``-or-``("err", ...)``
  messages, one connection per caller — was deleted after its one
  release as CI's A/B arm. The server still serves the *shape*: a
  first message that is neither ``mux`` nor ``hello`` is a raw peer op,
  the dialect replication peers and test harnesses use.)

**Mux frame format** — every frame, both directions, is::

    payload_len(4, big-endian) | call_id(8) | kind(1) | payload

where ``kind`` is :data:`KIND_REQUEST` (0), :data:`KIND_RESPONSE_OK`
(1), or :data:`KIND_RESPONSE_ERR` (2), and ``payload`` is the pickled
``(op, *args)`` tuple (requests), result object (ok responses), or
``(exc_type_name, message)`` pair (error responses), capped at
:data:`MAX_FRAME_PAYLOAD` bytes. :func:`encode_frame` builds frames and
:class:`FrameDecoder` incrementally parses a byte stream back into
``(call_id, kind, payload)`` triples, tolerating torn delivery (a
partial frame is buffered until the rest arrives) but refusing corrupt
headers with :class:`FrameError` — on a stream transport a bad header
means the connection itself is poisoned, so clients tear it down and
fail every in-flight call with ``StorageNodeDown``.

**Call-id lifecycle**: the client assigns each request a process-unique
monotonically increasing 64-bit ``call_id`` and parks a future under
it; the server dispatches frames as they arrive (each op runs inline on
the connection's demux loop, except ``fence``, which blocks on another
client's drain and is served from its own thread) and stamps the reply
with the same id. Replies may therefore arrive out of order; the id —
not arrival order — pairs them with their futures. A connection death
fails every parked future at once; ids are never reused within a
connection, and a reply for an id nobody waits on (the caller gave up)
is dropped.

The command channel additionally carries ``{"type": "rebind", "shard":
i, "epochs": {...}}`` master->worker messages after a shard respawn,
telling workers to drop their cached connection to shard ``i`` so the
next RPC reconnects to the replacement process on the same socket path;
with replication the piggybacked demotion-epoch vector refreshes the
workers' sweep-order hints (authoritative gating stays server-side).

Master recovery adds a **re-adoption handshake** on the same channel: a
master reconstructed from its journal sends ``{"type": "reattach",
"epochs": {...}}`` to every surviving worker, and the worker answers
with a fresh ``hello`` carrying a ``running`` key — the node id it is
mid-task on, or ``None`` if idle — handled both from the idle loop and
from the in-task cancellation poll, so a busy worker re-introduces
itself without abandoning its chunk stream. On the storage channel the
recovered master sends ``("probe",)``, answered with the shard's
demotion-epoch vector and bag inventory (the journal replay is checked
against what storage actually holds), and with ``replication > 1`` the
shards exchange ``("gossip", vector)`` peer-to-peer — a max-merge of
the same ``set_epochs`` payload — so primary failover keeps working
while the master is absent.

With ``replication = r > 1`` the storage channel grows a replicated op
family: ``rinsert`` (id-stamped, idempotent insert, fanned out to all
``r`` replicas by the client), ``rremove_batch`` (primary-gated,
``(client, seq)``-deduplicated destructive read), ``apply_removals``
(primary -> backup removal-log shipping), and the master-only
``sync_pull`` / ``sync_push`` (re-replication snapshots) and
``set_epochs`` (authoritative demotion-epoch push).

With disk-backed spill (``DistSettings.resident_bytes``) the shards
swap their in-memory store for :class:`repro.dist.segments.
SegmentBagStore`, clients use the replicated op family even at
``r = 1`` (the id-stamped, seq-deduplicated ops are what let in-flight
streams ride out a shard respawn that *reopens* its segment directory),
and the master-only segment-transfer ops replace snapshot resync:
``seg_pull`` packages bags as whole sealed segment files plus loose
open-tail chunks, ``seg_push`` installs such packages on the respawned
replica — sealed data moves as raw file bytes, never re-pickled
chunk-by-chunk.

Bulk reads stream: ``("read_page", bag_id, cursor, max_bytes)`` returns
``(chunks, next_cursor)`` — one bounded page of the bag's stable chunk
order, primary-gated exactly like ``read_all``, with an empty page
signalling the end (a cursor past the end answers empty rather than
erroring). Refill/snapshot paths page with
:func:`repro.engine.common.iter_bag_chunks` so no whole-bag payload is
ever resident in one process or one reply frame. The master-only
``("finalize", bag_id)`` op triggers segment compaction of a finished
bag (:meth:`repro.dist.segments.SegmentBagStore.finalize_bag`) on the
addressed replica, returning ``(segments_compacted, bytes_reclaimed)``
— idempotent, and a no-op on stores without segments.

Connections are established with :func:`connect_with_retry`, which reuses
the :class:`~repro.storage.policy.StorageConfig` retry/timeout/backoff
schedule (Section 4.4) against *real* clock time — a worker that starts
before the server listens, or that reconnects after a restart, backs off
instead of failing.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Client, Connection
from typing import Any, List, Optional, Tuple, Union

from repro.dist.adaptive import AdaptiveConfig
from repro.errors import ReproError
from repro.storage.policy import StorageConfig
from repro.units import KB

#: A Unix-socket path (preferred) or a ``(host, port)`` TCP endpoint.
StorageAddress = Union[str, Tuple[str, int]]

#: Real-time flavor of the Section 4.4 policy: sub-second backoffs, a few
#: seconds of total patience — tuned for same-host RPCs, not simulation.
#: The naive 12-step * 1.6x sum would be ~23s, but ``rpc_timeout`` caps
#: cumulative backoff: :meth:`StorageConfig.backoffs` stops before any
#: delay that would push the total past 8s, so only 9 of the 12 retries
#: ever happen and total patience is ~5.6s (<= ``rpc_timeout``, asserted
#: by ``tests/test_dist_protocol.py`` so schedule and intent can't drift
#: apart again).
DIST_STORAGE_POLICY = StorageConfig(
    rpc_retries=12,
    retry_backoff=0.05,
    backoff_multiplier=1.6,
    rpc_timeout=8.0,
)

# -- multiplexed storage-channel framing --------------------------------------

#: ``payload_len(4) | call_id(8) | kind(1)``, big-endian.
MUX_HEADER = struct.Struct(">IQB")

KIND_REQUEST = 0
KIND_RESPONSE_OK = 1
KIND_RESPONSE_ERR = 2
_KINDS = frozenset((KIND_REQUEST, KIND_RESPONSE_OK, KIND_RESPONSE_ERR))

#: Ceiling on one frame's pickled payload. Chunks are tens of KB; the cap
#: only exists so a corrupt length field (or a absurd caller) is rejected
#: as a protocol error instead of attempting a multi-GB allocation.
MAX_FRAME_PAYLOAD = 64 * 1024 * KB


class FrameError(ReproError):
    """A mux frame could not be encoded, or the byte stream is corrupt.

    Raised by :func:`encode_frame` for oversized payloads and by
    :class:`FrameDecoder` for headers that cannot be valid (unknown kind,
    length past :data:`MAX_FRAME_PAYLOAD`). Unlike the journal's framing
    — where a torn tail means "the log ends here" — a corrupt frame on a
    live stream means sender and receiver have lost sync, so the only
    safe reaction is tearing the connection down.
    """


def encode_frame(call_id: int, kind: int, obj: Any) -> bytes:
    """One wire-ready mux frame carrying ``obj`` pickled."""
    if kind not in _KINDS:
        raise FrameError(f"unknown frame kind {kind!r}")
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte cap (call {call_id})"
        )
    return MUX_HEADER.pack(len(payload), call_id, kind) + payload


class FrameDecoder:
    """Incremental parser for a mux byte stream.

    Feed it whatever the socket produced — any split, including
    mid-header — and it returns every *complete* frame as a
    ``(call_id, kind, payload_object)`` triple, buffering the torn tail
    for the next feed. Corrupt headers raise :class:`FrameError`.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a torn frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Tuple[int, int, Any]]:
        self._buffer += data
        frames: List[Tuple[int, int, Any]] = []
        while len(self._buffer) >= MUX_HEADER.size:
            size, call_id, kind = MUX_HEADER.unpack_from(self._buffer)
            if kind not in _KINDS:
                raise FrameError(f"unknown frame kind {kind} on the wire")
            if size > MAX_FRAME_PAYLOAD:
                raise FrameError(
                    f"frame announces {size} payload bytes, past the "
                    f"{MAX_FRAME_PAYLOAD}-byte cap — stream out of sync"
                )
            end = MUX_HEADER.size + size
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[MUX_HEADER.size:end])
            del self._buffer[:end]
            try:
                obj = pickle.loads(payload)
            except Exception as exc:
                raise FrameError(f"frame payload would not unpickle: {exc}")
            frames.append((call_id, kind, obj))
        return frames


@dataclass(frozen=True)
class NodeDescriptor:
    """Everything a worker needs to execute one schedulable node.

    Workers hold a forked copy of the static :class:`AppGraph` (task specs
    and code), but clone/merge nodes are created by the master at run time
    — so the dynamic wiring (stream input, per-member partial output bags,
    merge inputs) travels in the descriptor.
    """

    node_id: str
    task_id: str
    kind: str  # "task" | "clone" | "merge"
    stream_input: str
    side_inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    merge_inputs: Tuple[str, ...] = ()
    #: Index of this worker within the task family (0 = original); names
    #: the partial-output bag an aggregation member writes.
    member: int = 0
    #: Fault injection: the worker hard-exits (``os._exit``) after fetching
    #: this many stream chunks. Used by tests and the chaos-style smoke.
    kill_after_chunks: Optional[int] = None
    #: Journaled :class:`~repro.dist.adaptive.BatchDepthController`
    #: snapshot to resume from (``None`` = start from the config
    #: defaults). Set when a clone joins a family whose controller has
    #: already adapted, and when a recovered master re-dispatches — so a
    #: respawned task starts at the learned depth, not the cold default.
    adaptive_state: Optional[dict] = None


@dataclass(frozen=True)
class DistSettings:
    """Knobs forked into every worker process."""

    chunk_size: int = 64 * KB
    records_per_chunk: int = 256
    #: ``b`` of Eq. 1: chunk requests kept outstanding by the batch-sampling
    #: client (one in-flight batch of ``b`` while up to ``b`` are buffered).
    batch_requests: int = 4
    #: ``r`` of Section 4.4: copies kept of every bag. 1 = no replication
    #: (shard death recovers by replay); ``r > 1`` = primary-backup with
    #: client-side failover (shard death recovers by promotion).
    replication: int = 1
    #: Per-shard hot-memory budget in bytes; ``None`` (the default)
    #: keeps every chunk resident, exactly the pre-spill behavior. Set,
    #: it switches the shards to the disk-backed layered store
    #: (:mod:`repro.dist.segments`): every chunk is written through to
    #: append-only segment files and the in-memory hot tail is evicted
    #: down to the budget, so a shard's dataset ceiling becomes disk,
    #: not RAM.
    resident_bytes: Optional[int] = None
    #: Closed-loop control (:mod:`repro.dist.adaptive`): ``None`` (the
    #: default) keeps ``batch_requests`` and the clone thresholds
    #: static, byte-identical to the pre-adaptive engine. Set, each
    #: task re-derives its fetch depth ``b`` from measured chunk
    #: latency vs. processing rate and clone grants are gated on live
    #: overload signals instead of fixed thresholds.
    adaptive: Optional["AdaptiveConfig"] = None
    policy: StorageConfig = field(default_factory=lambda: DIST_STORAGE_POLICY)


def connect_with_retry(
    address: StorageAddress,
    authkey: bytes,
    policy: StorageConfig = DIST_STORAGE_POLICY,
    abort=None,
) -> Connection:
    """Open a storage connection, backing off per ``policy`` on refusal.

    ``abort`` (an optional zero-argument callable) is consulted before
    each backoff sleep; returning true re-raises the connect failure
    immediately. Without it, a caller being stopped (a fetcher whose
    task was cancelled) would ride out the full patience schedule
    against an address nobody cares about anymore.
    """
    backoffs = policy.backoffs()
    while True:
        try:
            return Client(address, authkey=authkey)
        except (EOFError, OSError, multiprocessing.AuthenticationError):
            # EOFError: the server died mid-auth-handshake (it is raised by
            # the challenge exchange, and is *not* an OSError). Retryable
            # exactly like a refused connection — the replacement process
            # binds the same socket path.
            # AuthenticationError: the same torn handshake one read later —
            # the dying server's half-written challenge digests as garbage.
            # It subclasses ProcessError, not OSError, so without this
            # clause it escaped the backoff loop entirely and a kill
            # landing mid-handshake was fatal instead of retried.
            if abort is not None and abort():
                raise
            delay = next(backoffs, None)
            if delay is None:
                raise
            time.sleep(delay)
