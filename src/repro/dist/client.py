"""Client side of the storage protocol: bag proxies and batch sampling.

:class:`RemoteBagStore` mimics the
:class:`~repro.storage.local.LocalBagStore` surface over one storage
connection; :class:`ShardedBagStore` composes ``m`` of them behind a
:class:`~repro.dist.sharding.ShardRouter`, so the engine-agnostic helpers
in :mod:`repro.engine.common` (and the shared
:class:`~repro.local.context.TaskContext`) work unchanged in worker and
master processes whether the storage tier is one process or ``m``.

With ``replication = r > 1`` the store hands out
:class:`ReplicatedRemoteBag` proxies instead: writes fan out to all ``r``
replicas (chunks stamped with client-unique ids so duplicate delivery is
a no-op), and reads **sweep** the replica set in serving order — primary
first — handling two refusals distinctly:

* :class:`~repro.errors.StorageNodeDown` — the replica's process is gone;
  demote it locally and try the next copy (client-side failover, no
  master round trip);
* :class:`~repro.errors.NotPrimary` — the replica is alive but not the
  bag's primary under *its* (master-pushed, authoritative) epoch vector;
  adopt the vector the refusal carries and re-route.

A sweep that fails on every replica backs off under the storage policy
and re-sweeps — riding out the window where the primary is dead but the
master has not yet pushed the promotion epochs — and only then raises
:class:`~repro.errors.StorageNodeDown` for the master's coarse recovery.

All data-plane traffic is multiplexed: each shard gets one
:class:`MuxShardClient` carrying every caller's frames over a single
socket (call-id-tagged, futures resolved by the process's one
:class:`MuxPump` selector thread). :class:`MuxBatchFetcher` is the
paper's batch-sampling access path (Section 4.2, Eq. 1) over that link:
instead of one round trip per chunk, a completion callback keeps a
``remove_batch`` of ``b`` chunks in flight while up to ``b`` are
buffered ahead of the consuming task, hiding the chunk-service latency
Eq. 1 charges per request — with O(shards) threads, not O(streams).
With ``m`` shards, each fetcher's RPCs land on the shard homing its bag
(or, with replication, sweep the replica set), so a worker running a
task plus prefetch keeps its outstanding requests spread over the
shards its bags land on — Eq. 1's ``m`` made real. The name
``BatchChunkFetcher`` is an alias kept for its import surface; the
threaded per-connection implementation behind it was deleted with the
legacy one-exchange channel (:class:`RemoteBagStore` survives as the
plain hello-dialect client used by diagnostics and test harnesses).

Bulk reads page through ``read_page`` (see :mod:`repro.dist.protocol`)
so a refill of a disk-backed bag never materializes the whole bag in
any process; ``finalize_bag`` triggers server-side segment compaction
of a finished bag, one replica at a time.
"""

from __future__ import annotations

import ast
import itertools
import os
import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import repro.errors as errors_mod
from repro.dist.protocol import (
    DIST_STORAGE_POLICY,
    KIND_REQUEST,
    KIND_RESPONSE_ERR,
    KIND_RESPONSE_OK,
    FrameDecoder,
    FrameError,
    StorageAddress,
    connect_with_retry,
    encode_frame,
)
from repro.dist.sharding import ShardRouter
from repro.errors import FetchTimeout, NotPrimary, ReproError, StorageNodeDown
from repro.storage.policy import StorageConfig

#: Poll interval while a streamed bag is empty but not yet sealed (only
#: possible for bags filled concurrently; scheduled tasks stream sealed
#: bags, so this path is a safety net, not a hot loop).
_UNSEALED_POLL_SECONDS = 0.005

#: Connection policy for per-replica stores in replicated mode. Unlike the
#: single-copy path — where waiting out the full storage policy against one
#: address is the only hope — a replicated client has somewhere better to
#: be: fail the connect fast, demote the replica, and let the *sweep* carry
#: the patience (its backoff loop re-tries the whole replica set under the
#: full policy). A couple of quick probes still absorb the bind-to-accept
#: startup race of a freshly spawned shard.
REPLICATED_PROBE_POLICY = StorageConfig(
    rpc_retries=3,
    retry_backoff=0.02,
    backoff_multiplier=1.8,
    rpc_timeout=1.0,
)

#: Bounded in-fence retry budget: the first few policy backoffs only.
#: ``fence`` is called by the master's recovery path, and the master is
#: the only agent that can respawn a dead shard — blocking inside fence
#: for the full policy window would deadlock recovery against itself, so
#: after a short grace the failure is surfaced for the caller's own
#: retry loop (which runs shard reaping between attempts).
_FENCE_RETRY_STEPS = 3


def _parse_epoch_vector(message: str) -> Dict[int, int]:
    """Recover the ``{shard: epoch}`` dict a NotPrimary refusal carries.

    Defensive on every axis, because the message crossed a process
    boundary as text: non-literal strings, non-dict literals, and
    entries whose key or value is not an int are all dropped rather
    than raised on. The type check is ``type(...) is int``, not
    ``isinstance``, because ``isinstance(True, int)`` holds — a bool
    smuggled into the vector would otherwise become shard 0/1 with a
    nonsense epoch and silently skew the sweep order.
    """
    try:
        vector = ast.literal_eval(message)
    except (ValueError, SyntaxError):
        return {}
    if not isinstance(vector, dict):
        return {}
    return {
        shard: epoch
        for shard, epoch in vector.items()
        if type(shard) is int and type(epoch) is int
    }


class RemoteBag:
    """Proxy for one bag hosted by the storage shard that homes it."""

    def __init__(self, store: "RemoteBagStore", bag_id: str):
        self.bag_id = bag_id
        self._store = store

    def insert(self, chunk: Any) -> None:
        self._store.call("insert", self.bag_id, chunk)

    def remove(self) -> Optional[Any]:
        chunk, _sealed = self._store.call("remove", self.bag_id)
        return chunk

    def remove_batch(self, count: int) -> Tuple[List[Any], bool]:
        return self._store.call("remove_batch", self.bag_id, count)

    def read_all(self) -> List[Any]:
        return self._store.call("read_all", self.bag_id)

    def read_page(self, cursor: int, max_bytes: int) -> Tuple[List[Any], int]:
        return self._store.call("read_page", self.bag_id, cursor, max_bytes)

    def seal(self) -> None:
        self._store.call("seal", self.bag_id)

    def remaining(self) -> int:
        return self._store.call("remaining", self.bag_id)

    def rewind(self) -> None:
        self._store.call("rewind", self.bag_id)

    def discard(self) -> None:
        self._store.call("discard", self.bag_id)

    def size(self) -> int:
        return self._store.call("size", self.bag_id)


class RemoteBagStore:
    """A LocalBagStore-compatible facade over one shard connection.

    Thread-safe: a lock serializes the send/recv pair. Connection
    establishment retries per the storage policy; a failure *mid-call*
    raises :class:`~repro.errors.StorageNodeDown` instead of retrying,
    because mutating ops (insert, remove_batch) are not idempotent. The
    broken socket is closed and dropped, so the *next* call reconnects
    (with retry/backoff) — which is how clients ride out a shard respawn.
    """

    def __init__(
        self,
        address: StorageAddress,
        authkey: bytes,
        client_id: str,
        policy: StorageConfig = DIST_STORAGE_POLICY,
    ):
        self.address = address
        self.authkey = authkey
        self.client_id = client_id
        self.policy = policy
        self._conn = None
        self._lock = threading.Lock()
        self._abort_requested = False

    def _ensure_conn(self):
        if self._conn is None:
            try:
                conn = connect_with_retry(
                    self.address,
                    self.authkey,
                    self.policy,
                    abort=lambda: self._abort_requested,
                )
                conn.send(("hello", self.client_id))
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                # A shard dying mid-handshake surfaces as EOFError (not an
                # OSError) from the auth exchange; normalize so callers see
                # the one storage-failure type they know how to recover.
                self._drop_conn_locked()
                raise StorageNodeDown(
                    f"storage shard unreachable during handshake "
                    f"(address {self.address!r}): {exc}"
                ) from exc
            if status != "ok":
                conn.close()
                raise StorageNodeDown(f"storage handshake failed: {payload}")
            self._conn = conn
        return self._conn

    def _drop_conn_locked(self) -> None:
        # Close before dropping: leaving the broken socket open would leak
        # one fd per failure, and a long run with shard respawns makes
        # failures routine rather than fatal.
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def call(self, op: str, *args: Any) -> Any:
        with self._lock:
            conn = self._ensure_conn()
            try:
                conn.send((op,) + args)
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                self._drop_conn_locked()
                raise StorageNodeDown(
                    f"storage shard unreachable during {op!r} "
                    f"(address {self.address!r}): {exc}"
                ) from exc
            if status == "err":
                exc_name, message = payload
                exc_type = getattr(errors_mod, exc_name, None)
                if exc_type is None or not isinstance(exc_type, type):
                    exc_type = errors_mod.ReproError
                raise exc_type(message)
            return payload

    def invalidate(self) -> None:
        """Drop the cached connection (the shard behind it was replaced)."""
        with self._lock:
            self._drop_conn_locked()

    def abort(self) -> None:
        """Force a call blocked inside this store to fail immediately.

        Deliberately lock-free: ``call`` holds the lock across its recv,
        so a locked abort would deadlock behind the very call it needs
        to interrupt. Closing the fd would not help either — Linux does
        not wake a thread blocked in ``read`` when another thread closes
        its fd — so the socket is *shut down* instead, which delivers
        EOF into the blocked recv and lets ``call`` unwind through its
        normal torn-connection path. A call parked in connect backoff
        (no socket yet to shut down) is covered by the abort flag, which
        ``connect_with_retry`` checks before every sleep.
        """
        self._abort_requested = True
        conn = self._conn
        if conn is None:
            return
        try:
            sock = socket.socket(fileno=os.dup(conn.fileno()))
        except OSError:
            return
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        finally:
            sock.close()

    # -- LocalBagStore surface ------------------------------------------------

    def ensure(self, bag_id: str) -> RemoteBag:
        return RemoteBag(self, bag_id)

    def get(self, bag_id: str) -> RemoteBag:
        # Server-side ops auto-ensure; get/ensure are aliases here.
        return RemoteBag(self, bag_id)

    def close(self) -> None:
        with self._lock:
            self._drop_conn_locked()


class MuxPump:
    """The per-process selector thread behind every mux connection.

    One thread owns readability for all registered mux sockets of a
    :class:`ShardedBagStore`: it reads, frame-decodes, and resolves
    response futures for every shard link — which is what keeps a
    worker's thread count O(shards) instead of O(streams). Registration
    and teardown are funneled through an op queue drained on the pump
    thread (a self-pipe wakes the selector), so a socket is always
    removed from the selector *before* it is closed — a reused fd
    number can never land in a stale registration.
    """

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._waker_read, self._waker_write = os.pipe()
        os.set_blocking(self._waker_read, False)
        self._selector.register(self._waker_read, selectors.EVENT_READ, None)
        self._ops: "deque[Tuple[str, Any, Any]]" = deque()
        self._lock = threading.Lock()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    def _wake(self) -> None:
        try:
            os.write(self._waker_write, b"x")
        except OSError:
            pass

    def register(self, fd: int, client: "MuxShardClient") -> None:
        """Watch ``fd`` and deliver its bytes to ``client._on_readable``."""
        with self._lock:
            self._ops.append(("register", fd, client))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, daemon=True, name="mux-pump"
                )
                self._thread.start()
        self._wake()

    def discard(self, conn: Any) -> None:
        """Unregister ``conn``'s socket and close it, from any thread."""
        if threading.current_thread() is self._thread:
            self._discard_now(conn)
            return
        with self._lock:
            deliverable = (
                self._thread is not None
                and self._thread.is_alive()
                and not self._stopping
            )
            if deliverable:
                self._ops.append(("discard", conn, None))
        if deliverable:
            self._wake()
        else:
            self._discard_now(conn)

    def _discard_now(self, conn: Any) -> None:
        try:
            self._selector.unregister(conn.fileno())
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _apply_ops(self) -> None:
        while True:
            with self._lock:
                if not self._ops:
                    return
                op, first, second = self._ops.popleft()
            if op == "register":
                try:
                    self._selector.register(first, selectors.EVENT_READ, second)
                except (KeyError, ValueError, OSError):
                    pass
            else:
                self._discard_now(first)

    def _run(self) -> None:
        while True:
            self._apply_ops()
            if self._stopping:
                break
            try:
                events = self._selector.select()
            except OSError:
                continue
            for key, _mask in events:
                if key.fd == self._waker_read:
                    try:
                        os.read(self._waker_read, 4096)
                    except OSError:
                        pass
                    continue
                if key.data is not None:
                    key.data._on_readable()
        self._close_resources()

    def _close_resources(self) -> None:
        try:
            self._selector.close()
        except OSError:
            pass
        for fd in (self._waker_read, self._waker_write):
            try:
                os.close(fd)
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            self._stopping = True
            thread = self._thread
        if thread is None:
            self._close_resources()
            return
        self._wake()
        if thread is not threading.current_thread():
            thread.join(timeout=2.0)


class MuxShardClient:
    """RemoteBagStore-compatible facade multiplexing calls on one socket.

    Every caller in the process shares this one connection per shard:
    :meth:`submit` stamps the request with a client-unique 64-bit call
    id, parks a future under it, and writes one frame; the store's
    :class:`MuxPump` resolves the future when the matching response
    frame arrives — so a slow ``remove_batch`` never head-of-line
    blocks a concurrent ``rinsert`` ack, and callers that want
    pipelining hold several futures at once. :meth:`call` is the
    blocking convenience wrapper with the legacy error mapping.

    Failure semantics mirror :class:`RemoteBagStore`: a connection
    death fails every in-flight future with
    :class:`~repro.errors.StorageNodeDown` (mutating ops are not
    idempotent, so nothing is silently retried) and the *next* submit
    reconnects under the storage policy's backoff.
    """

    def __init__(
        self,
        address: StorageAddress,
        authkey: bytes,
        client_id: str,
        policy: StorageConfig,
        pump: MuxPump,
    ):
        self.address = address
        self.authkey = authkey
        self.client_id = client_id
        self.policy = policy
        self._pump = pump
        self._lock = threading.Lock()
        self._conn = None
        self._decoder: Optional[FrameDecoder] = None
        #: Never reset across reconnects: a late reply from a torn
        #: connection can then never collide with a new call's future.
        self._call_ids = itertools.count(1)
        self._pending: Dict[int, Future] = {}

    # -- connection lifecycle ---------------------------------------------------

    def _ensure_conn_locked(self) -> None:
        if self._conn is not None:
            return
        try:
            conn = connect_with_retry(self.address, self.authkey, self.policy)
            conn.send(("mux", self.client_id))
            status, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise StorageNodeDown(
                f"storage shard unreachable during mux handshake "
                f"(address {self.address!r}): {exc}"
            ) from exc
        if status != "ok":
            conn.close()
            raise StorageNodeDown(f"storage mux handshake failed: {payload}")
        self._conn = conn
        self._decoder = FrameDecoder()
        self._pump.register(conn.fileno(), self)

    @property
    def connected(self) -> bool:
        return self._conn is not None

    def _teardown_locked(self) -> List[Future]:
        """Drop the connection; the caller fails the returned futures
        *outside* the lock (their callbacks may re-enter this client)."""
        conn, self._conn = self._conn, None
        self._decoder = None
        doomed = list(self._pending.values())
        self._pending.clear()
        if conn is not None:
            self._pump.discard(conn)
        return doomed

    def _fail(self, exc: BaseException) -> None:
        with self._lock:
            doomed = self._teardown_locked()
        for future in doomed:
            if not future.done():
                future.set_exception(exc)

    # -- call paths -------------------------------------------------------------

    def _send_locked(self, data: bytes) -> None:
        fd = self._conn.fileno()
        view = memoryview(data)
        while view:
            view = view[os.write(fd, view):]

    def submit(self, op: str, *args: Any) -> "Future[Any]":
        """Write one request frame; the returned future resolves on reply.

        Raises :class:`~repro.errors.StorageNodeDown` if no connection
        could be established; a send failure instead lands on the future
        (and every other in-flight future, since the link is dead).
        """
        future: "Future[Any]" = Future()
        with self._lock:
            self._ensure_conn_locked()
            call_id = next(self._call_ids)
            data = encode_frame(call_id, KIND_REQUEST, (op,) + args)
            self._pending[call_id] = future
            try:
                self._send_locked(data)
            except OSError as exc:
                down = StorageNodeDown(
                    f"storage shard unreachable during {op!r} "
                    f"(address {self.address!r}): {exc}"
                )
                doomed = self._teardown_locked()
            else:
                return future
        for pending in doomed:
            if not pending.done():
                pending.set_exception(down)
        return future

    def call(self, op: str, *args: Any) -> Any:
        return self.submit(op, *args).result()

    # -- pump side --------------------------------------------------------------

    def _on_readable(self) -> None:
        # Non-blocking grab: a caller mid-reconnect holds the lock for
        # the whole backoff schedule, and the pump must never wait that
        # out (it would freeze every other shard's traffic). Declining
        # is safe — unread bytes stay queued and select re-fires.
        if not self._lock.acquire(blocking=False):
            return
        try:
            conn, decoder = self._conn, self._decoder
        finally:
            self._lock.release()
        if conn is None:
            return
        try:
            data = os.read(conn.fileno(), 1 << 16)
        except OSError:
            data = b""
        if not data:
            self._fail(
                StorageNodeDown(
                    f"storage shard at {self.address!r} closed the mux link"
                )
            )
            return
        try:
            frames = decoder.feed(data)
        except FrameError as exc:
            self._fail(
                StorageNodeDown(
                    f"mux stream from {self.address!r} corrupt: {exc}"
                )
            )
            return
        for call_id, kind, payload in frames:
            with self._lock:
                future = self._pending.pop(call_id, None)
            if future is None or future.done():
                continue  # caller gave up on this id; drop the reply
            if kind == KIND_RESPONSE_OK:
                future.set_result(payload)
            elif kind == KIND_RESPONSE_ERR:
                exc_name, message = payload
                exc_type = getattr(errors_mod, exc_name, None)
                if exc_type is None or not isinstance(exc_type, type):
                    exc_type = errors_mod.ReproError
                future.set_exception(exc_type(message))
            else:
                self._fail(
                    StorageNodeDown(
                        f"storage shard at {self.address!r} sent a "
                        f"request frame to a client"
                    )
                )
                return

    # -- RemoteBagStore surface -------------------------------------------------

    def ensure(self, bag_id: str) -> "RemoteBag":
        return RemoteBag(self, bag_id)

    def get(self, bag_id: str) -> "RemoteBag":
        return RemoteBag(self, bag_id)

    def invalidate(self) -> None:
        """Drop the link (the shard was replaced); fails in-flight calls."""
        self._fail(
            StorageNodeDown(
                f"mux connection to {self.address!r} invalidated"
            )
        )

    def abort(self) -> None:
        self.invalidate()

    def close(self) -> None:
        self._fail(
            StorageNodeDown(f"mux client for {self.address!r} closed")
        )


class ReplicatedRemoteBag:
    """Proxy for one bag replicated over ``r`` storage shards.

    Writes fan out to every replica; destructive and snapshot reads go
    through the owning store's serving-order sweep, which fails over to a
    backup when the primary dies and re-routes when a replica refuses
    with :class:`~repro.errors.NotPrimary`. ``remove_batch`` carries a
    ``(client_id, seq)`` pair that stays **stable across the sweep's
    retries**, so a request the dead primary served-but-never-answered is
    answered from the promoted backup's shipped removal log instead of
    being served twice.
    """

    def __init__(self, store: "ShardedBagStore", bag_id: str):
        self.bag_id = bag_id
        self._store = store

    def insert(self, chunk: Any) -> None:
        self._store.fanout_insert(self.bag_id, chunk)

    def remove(self) -> Optional[Any]:
        chunks, _sealed = self.remove_batch(1)
        return chunks[0] if chunks else None

    def remove_batch(self, count: int) -> Tuple[List[Any], bool]:
        return self._store.replicated_remove_batch(self.bag_id, count)

    def read_all(self) -> List[Any]:
        return self._store.sweep_call(self.bag_id, "read_all", self.bag_id)

    def read_page(self, cursor: int, max_bytes: int) -> Tuple[List[Any], int]:
        return self._store.sweep_call(
            self.bag_id, "read_page", self.bag_id, cursor, max_bytes
        )

    def seal(self) -> None:
        self._store.fanout(self.bag_id, "seal", self.bag_id)

    def remaining(self) -> int:
        return self._store.sweep_call(self.bag_id, "remaining", self.bag_id)

    def rewind(self) -> None:
        self._store.fanout(self.bag_id, "rewind", self.bag_id)

    def discard(self) -> None:
        self._store.fanout(self.bag_id, "discard", self.bag_id)

    def size(self) -> int:
        return self._store.sweep_call(self.bag_id, "size", self.bag_id)


class ShardedBagStore:
    """LocalBagStore-compatible facade over ``m`` storage shards.

    Holds one lazily-connected :class:`RemoteBagStore` per shard and
    routes every bag operation through a :class:`ShardRouter`, so callers
    (the engine-agnostic helpers, ``TaskContext``, the master) never see
    the sharding. Fan-out operations — ``stats``, ``fence``, ``shutdown``,
    ``remaining_many`` — address all shards explicitly.

    In replicated mode (``router.replication > 1``) the store also owns
    the client-side failover state: a demotion-epoch *hint* vector that
    orders each bag's replica sweep (the servers gate authoritatively, so
    a stale hint costs an extra hop, never correctness), the
    client-unique chunk-id counter behind idempotent insert fan-out, and
    the per-bag removal sequence counters behind exactly-once
    ``remove_batch`` retries.
    """

    def __init__(
        self,
        addresses: Sequence[StorageAddress],
        authkey: bytes,
        client_id: str,
        policy: StorageConfig = DIST_STORAGE_POLICY,
        router: Optional[ShardRouter] = None,
        replica_ops: bool = False,
    ):
        if not addresses:
            raise ValueError("ShardedBagStore needs at least one shard address")
        self.addresses = list(addresses)
        self.router = router if router is not None else ShardRouter(len(addresses))
        if self.router.shards != len(self.addresses):
            raise ValueError(
                f"router covers {self.router.shards} shards but "
                f"{len(self.addresses)} addresses were given"
            )
        self.client_id = client_id
        self.authkey = authkey
        self.policy = policy
        #: Speak the replicated op family (id-stamped ``rinsert``,
        #: seq-deduplicated ``rremove_batch``, sweeping reads) even when
        #: ``replication == 1``. Forced on by replication; requested by
        #: the spill configuration (``DistSettings.resident_bytes``),
        #: where the idempotent/deduplicated ops are what let in-flight
        #: streams retry through a shard respawn that *reopens* its
        #: segment directory — the zero-reset r=1 recovery path.
        self.replica_ops = bool(replica_ops) or self.router.replication > 1
        per_shard_policy = (
            REPLICATED_PROBE_POLICY if self.router.replication > 1 else policy
        )
        self.per_shard_policy = per_shard_policy
        self._pump = MuxPump()
        self.stores: List[MuxShardClient] = [
            MuxShardClient(
                address, authkey, client_id, per_shard_policy, self._pump
            )
            for address in self.addresses
        ]
        self._epochs: Dict[int, int] = {}
        self._epoch_lock = threading.Lock()
        self._chunk_counter = itertools.count()
        self._seqs: Dict[str, int] = {}
        self._seq_lock = threading.Lock()

    @property
    def shards(self) -> int:
        return len(self.stores)

    @property
    def replication(self) -> int:
        return self.router.replication

    def shard_of(self, bag_id: str) -> int:
        return self.router.home(bag_id)

    def address_of(self, bag_id: str) -> StorageAddress:
        return self.addresses[self.shard_of(bag_id)]

    def store_for(self, bag_id: str) -> MuxShardClient:
        return self.stores[self.shard_of(bag_id)]

    # -- replication state ------------------------------------------------------

    def epoch_snapshot(self) -> Dict[int, int]:
        with self._epoch_lock:
            return dict(self._epochs)

    def mark_demoted(self, shard: int) -> None:
        """Locally demote ``shard`` in sweep order (its process looked dead)."""
        with self._epoch_lock:
            self._epochs[shard] = self._epochs.get(shard, 0) + 1

    def adopt_epochs(self, epochs: Dict[int, int]) -> None:
        """Max-merge an epoch vector learned from a server or rebind."""
        with self._epoch_lock:
            for shard, epoch in epochs.items():
                if epoch > self._epochs.get(shard, 0):
                    self._epochs[shard] = epoch

    def serving_order(self, bag_id: str) -> List[int]:
        """``bag_id``'s replicas, believed-primary first.

        Sorted by (demotion epoch, ring position) — the same rule each
        shard applies to its authoritative vector, so with fresh hints
        the first entry is the real primary and the sweep is one hop.
        """
        replicas = self.router.replicas(bag_id)
        with self._epoch_lock:
            return sorted(
                replicas,
                key=lambda s: (self._epochs.get(s, 0), replicas.index(s)),
            )

    def next_chunk_id(self) -> str:
        return f"{self.client_id}#{next(self._chunk_counter)}"

    def next_seq(self, bag_id: str) -> int:
        with self._seq_lock:
            seq = self._seqs.get(bag_id, 0) + 1
            self._seqs[bag_id] = seq
            return seq

    # -- replicated access paths ------------------------------------------------

    def sweep(self, bag_id: str, attempt) -> Any:
        """Run ``attempt(shard)`` against ``bag_id``'s replicas until one serves.

        One pass over the serving order per round: a replica whose process
        is unreachable is demoted locally and skipped; a replica refusing
        as non-primary donates its (authoritative) epoch vector. Rounds
        are separated by the storage policy's backoff — covering the gap
        between a primary's death and the master's promotion push — and
        exhaustion raises :class:`~repro.errors.StorageNodeDown` so the
        master's coarse-grained recovery takes over.
        """
        backoffs = self.policy.backoffs()
        while True:
            last_down: Optional[StorageNodeDown] = None
            for shard in self.serving_order(bag_id):
                try:
                    return attempt(shard)
                except StorageNodeDown as exc:
                    self.mark_demoted(shard)
                    last_down = exc
                except NotPrimary as exc:
                    self.adopt_epochs(_parse_epoch_vector(str(exc)))
            delay = next(backoffs, None)
            if delay is None:
                raise StorageNodeDown(
                    f"no replica of bag {bag_id!r} would serve "
                    f"(replicas {self.router.replicas(bag_id)})"
                ) from last_down
            time.sleep(delay)

    def sweep_call(self, bag_id: str, op: str, *args: Any) -> Any:
        return self.sweep(
            bag_id, lambda shard: self.stores[shard].call(op, *args)
        )

    def replicated_remove_batch(
        self, bag_id: str, count: int
    ) -> Tuple[List[Any], bool]:
        seq = self.next_seq(bag_id)
        return self.sweep(
            bag_id,
            lambda shard: self.stores[shard].call(
                "rremove_batch", bag_id, count, self.client_id, seq
            ),
        )

    def fanout(self, bag_id: str, op: str, *args: Any) -> None:
        """Apply a write-side op to every replica of ``bag_id``.

        A replica whose process is unreachable is skipped: a dead shard's
        replacement is re-replicated by the master from a surviving copy
        before it can serve, so the skipped write still arrives. At least
        one replica must accept, or the write would vanish entirely.

        At ``replication == 1`` (replica ops forced on by spill) there
        is no surviving copy to re-replicate from — the one shard's
        reopened segment directory *is* the data — so instead of failing
        the write when that shard is mid-respawn, the pass is retried
        under the storage policy's backoff. Every op routed here is
        idempotent (``rinsert`` is id-keyed; seal/rewind/discard are
        absorbing), so re-applying a round that half-landed is safe.
        """
        backoffs = self.policy.backoffs()
        while True:
            served = self._fanout_pass(bag_id, op, args)
            if served:
                return
            delay = None if self.replication > 1 else next(backoffs, None)
            if delay is None:
                raise StorageNodeDown(
                    f"all {self.replication} replicas of bag {bag_id!r} "
                    f"are down for {op!r}"
                )
            time.sleep(delay)

    def _fanout_pass(self, bag_id: str, op: str, args: Tuple[Any, ...]) -> int:
        # One submit round, one gather round: the replicas serve the
        # write concurrently instead of paying r serial round trips.
        served = 0
        submitted: List[Tuple[int, Future]] = []
        for shard in self.router.replicas(bag_id):
            try:
                submitted.append((shard, self.stores[shard].submit(op, *args)))
            except StorageNodeDown:
                self.mark_demoted(shard)
        for shard, future in submitted:
            try:
                future.result()
                served += 1
            except StorageNodeDown:
                self.mark_demoted(shard)
        return served

    def fanout_insert(self, bag_id: str, chunk: Any) -> None:
        chunk_id = self.next_chunk_id()
        self.fanout(bag_id, "rinsert", bag_id, chunk_id, chunk)

    # -- master-side replication control ---------------------------------------

    def sync_pull(self, shard: int, bag_ids: Iterable[str]) -> Dict[str, Any]:
        """Snapshot ``bag_ids`` from ``shard`` (re-replication source)."""
        return self.stores[shard].call("sync_pull", list(bag_ids))

    def sync_push(self, shard: int, snaps: Dict[str, Any]) -> None:
        """Merge bag snapshots into ``shard`` (re-replication target)."""
        self.stores[shard].call("sync_push", snaps)

    def seg_pull(self, shard: int, bag_ids: Iterable[str]) -> Dict[str, Any]:
        """Package ``bag_ids`` from a spilling ``shard``: whole sealed
        segment files plus loose open-tail chunks — the segment-shipping
        flavor of :meth:`sync_pull`."""
        return self.stores[shard].call("seg_pull", list(bag_ids))

    def seg_push(self, shard: int, packages: Dict[str, Any]) -> None:
        """Install segment packages on ``shard`` (re-replication target)."""
        self.stores[shard].call("seg_push", packages)

    def finalize_bag(self, shard: int, bag_id: str) -> Tuple[int, int]:
        """Compact ``bag_id``'s segments on ``shard`` (master-only op).

        Explicitly per-replica (like ``seg_pull``/``seg_push``) instead
        of routed: the master drives each replica of a finished bag in
        turn so every copy reclaims its dead frames. Idempotent — a
        retry against an already-compacted bag answers ``(0, 0)``.
        """
        return self.stores[shard].call("finalize", bag_id)

    def push_epochs(self, shard: int, epochs: Dict[int, int]) -> None:
        """Install the master's demotion-epoch vector on ``shard``."""
        self.stores[shard].call("set_epochs", dict(epochs))

    def probe(self, shard: int) -> Dict[str, Any]:
        """``shard``'s identity, epoch vector, and bag inventory.

        The recovering master's ground-truth check: what the journal says
        ran is reconciled against what the shards actually hold, and any
        demotions the shards gossiped among themselves while no master
        was alive are max-merged back into the master's vector.
        """
        return self.stores[shard].call("probe")

    # -- LocalBagStore surface ------------------------------------------------

    def ensure(self, bag_id: str):
        if self.replica_ops:
            return ReplicatedRemoteBag(self, bag_id)
        return self.store_for(bag_id).ensure(bag_id)

    def get(self, bag_id: str):
        if self.replica_ops:
            return ReplicatedRemoteBag(self, bag_id)
        return self.store_for(bag_id).get(bag_id)

    # -- fan-out operations -----------------------------------------------------

    def remaining_many(self, bag_ids: Iterable[str]) -> Dict[str, int]:
        """Remaining-chunk counts for ``bag_ids``, one RPC per shard hit.

        Replicated mode sweeps per bag instead: the counts must come from
        each bag's primary (a backup's pending set can run ahead of the
        shipped removal log), and different bags in one home-shard group
        can have different primaries after a failover.
        """
        if self.replication > 1:
            return {
                bag_id: self.sweep_call(bag_id, "remaining", bag_id)
                for bag_id in bag_ids
            }
        merged: Dict[str, int] = {}
        groups = sorted(self.router.partition(bag_ids).items())
        submitted = [
            (shard, self.stores[shard].submit("remaining_many", group))
            for shard, group in groups
        ]
        for _shard, future in submitted:
            merged.update(future.result())
        return merged

    def stats(self) -> List[Dict[str, int]]:
        """Per-shard op-counter snapshots, indexed by shard."""
        return [f.result() for f in [s.submit("stats") for s in self.stores]]

    def fence(self, client_id: str, timeout: Optional[float]) -> int:
        """Fence ``client_id`` on **every** shard; returns leftover conns.

        A dead worker may have had connections open to any subset of the
        shards (store proxy plus one fetcher per streamed bag), so the
        single-server fence generalizes to all-shards: recovery may only
        proceed once no shard still holds an undrained connection of the
        corpse.

        The sweep continues past a shard that is down — aborting
        mid-loop would leave the remaining shards unfenced while the
        caller believes the corpse is drained. Failed shards are retried
        under a short bounded backoff (they may be mid-respawn, and a
        respawned shard holds no old connections — its fence is trivially
        clean); a shard still down after the budget raises
        :class:`~repro.errors.StorageNodeDown` so the caller's own
        retry loop (which can actually respawn shards) takes over.
        """
        leftover = 0
        failed: List[int] = []
        for shard, store in enumerate(self.stores):
            try:
                leftover += store.call("fence", client_id, timeout)
            except StorageNodeDown:
                failed.append(shard)
        if not failed:
            return leftover
        backoffs = itertools.islice(self.policy.backoffs(), _FENCE_RETRY_STEPS)
        for delay in backoffs:
            time.sleep(delay)
            still_failed: List[int] = []
            for shard in failed:
                try:
                    leftover += self.stores[shard].call("fence", client_id, timeout)
                except StorageNodeDown:
                    still_failed.append(shard)
            failed = still_failed
            if not failed:
                return leftover
        raise StorageNodeDown(
            f"shards {failed} unreachable while fencing {client_id!r}"
        )

    def shutdown(self) -> None:
        for store in self.stores:
            try:
                store.call("shutdown")
            except (errors_mod.ReproError, StorageNodeDown):
                pass  # already dead; the master reaps the process anyway

    def invalidate(self, shard: int) -> None:
        """Drop the cached connection to ``shard`` (it was respawned)."""
        self.stores[shard].invalidate()

    def close(self) -> None:
        for store in self.stores:
            store.close()
        if self._pump is not None:
            self._pump.close()


class _FetchAborted(Exception):
    """Internal: unwinds a fetch sweep interrupted by ``stop()``.

    Deliberately neither :class:`~repro.errors.StorageNodeDown` nor
    :class:`~repro.errors.NotPrimary`, so it escapes the sweep's retry
    handling immediately instead of being absorbed as one more replica
    failure.
    """


class MuxBatchFetcher:
    """Threadless batch-sampling fetcher over the multiplexed store.

    The Eq. 1 access path: ``get`` returns buffered chunks while the
    next ``remove_batch`` of ``b`` chunks is already in flight. The
    overlap comes from a completion callback instead of a dedicated
    thread: each resolved batch future re-arms the next request on the
    shared :class:`MuxShardClient` link, so a worker streaming fifty
    bags runs fifty of these on the *same* O(shards) pump threads. The
    only thread this class ever spawns is a short-lived
    replicated-failover sweep (primary died mid-stream), because that
    path must block through reconnect backoffs, which the pump may not.

    Latency samples are tagged per serving shard in
    :attr:`latencies_by_shard` (the flat :attr:`latencies` /
    :attr:`shard` pair is kept for single-shard consumers).
    """

    def __init__(self, store: ShardedBagStore, bag_id: str, batch: int):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self._parent = store
        self.bag_id = bag_id
        self.batch = batch
        self.shard = (
            store.serving_order(bag_id)[0]
            if store.replica_ops
            else store.shard_of(bag_id)
        )
        self.latencies: List[float] = []
        self._latencies_by_shard: Dict[int, List[float]] = {}
        self._cond = threading.Condition()
        self._buffer: "deque[Any]" = deque()
        self._eof = False
        self._error: Optional[BaseException] = None
        self._stopped = False
        self._aborted = False
        self._inflight = False
        #: Earliest monotonic time the next request may be issued; set
        #: when a batch comes back empty-but-unsealed so the re-arm loop
        #: polls at ``_UNSEALED_POLL_SECONDS`` instead of spinning.
        self._retry_after: Optional[float] = None
        self._recovery: Optional[threading.Thread] = None
        with self._cond:
            self._issue_locked()

    @classmethod
    def for_bag(
        cls,
        store: ShardedBagStore,
        bag_id: str,
        batch: int,
        policy: StorageConfig = DIST_STORAGE_POLICY,
    ) -> "MuxBatchFetcher":
        """Fetcher streaming ``bag_id`` over ``store``'s shared links.

        The historical constructor shape from the deleted threaded
        fetcher, kept because call sites read better naming the bag than
        spelling the routing; ``policy`` is accepted for signature
        compatibility but unused — the store's per-shard policy already
        governs the shared connections.
        """
        del policy
        return cls(store, bag_id, batch)

    @property
    def latencies_by_shard(self) -> Dict[int, List[float]]:
        return self._latencies_by_shard

    def set_batch(self, batch: int) -> None:
        """Re-arm the pipeline depth: the *next* request asks for ``batch``.

        The adaptive controller's actuator. ``_issue_locked`` reads
        ``self.batch`` fresh on every issue, so no in-flight request is
        disturbed — the new depth simply governs every request armed
        after this call. Deepening may arm a request immediately (the
        buffer that satisfied the old bound no longer satisfies the new
        one); shallowing lets the buffer drain to the new bound first.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        with self._cond:
            if batch == self.batch:
                return
            self.batch = batch
            self._issue_locked()

    # -- request pipeline --------------------------------------------------------

    def _issue_locked(self, from_pump: bool = False) -> None:
        """Arm the next ``remove_batch`` if the stream wants one.

        Skips when a request is already in flight, the bag is done, a
        failover sweep owns the stream, the buffer already holds a full
        batch (bounded prefetch, like the legacy queue), or the
        unsealed-empty pacing window has not elapsed.
        """
        if (
            self._inflight
            or self._eof
            or self._stopped
            or self._recovery is not None
            or len(self._buffer) >= self.batch
        ):
            return
        if self._retry_after is not None:
            if time.monotonic() < self._retry_after:
                return
            self._retry_after = None
        parent = self._parent
        if parent.replica_ops:
            shard = parent.serving_order(self.bag_id)[0]
            seq: Optional[int] = parent.next_seq(self.bag_id)
            op_args: Tuple[Any, ...] = (
                "rremove_batch", self.bag_id, self.batch, parent.client_id, seq,
            )
        else:
            shard = parent.shard_of(self.bag_id)
            seq = None
            op_args = ("remove_batch", self.bag_id, self.batch)
        client = parent.stores[shard]
        if from_pump and not client.connected:
            # Reconnecting blocks through the storage policy's backoff
            # schedule — never on the pump thread. The consumer's next
            # ``get`` re-issues from a thread allowed to wait.
            return
        started = time.perf_counter()
        try:
            future = client.submit(*op_args)
        except StorageNodeDown as exc:
            self._handle_failure_locked(shard, seq, exc)
            return
        self._inflight = True
        future.add_done_callback(
            lambda f: self._on_batch(f, shard, seq, started)
        )

    def _on_batch(
        self,
        future: "Future[Any]",
        shard: int,
        seq: Optional[int],
        started: float,
    ) -> None:
        elapsed = time.perf_counter() - started
        with self._cond:
            self._inflight = False
            if self._stopped:
                self._cond.notify_all()
                return
            try:
                chunks, sealed = future.result()
            except (StorageNodeDown, NotPrimary) as exc:
                self._handle_failure_locked(shard, seq, exc)
                return
            except BaseException as exc:
                self._error = exc
                self._eof = True
                self._cond.notify_all()
                return
            self._deliver_locked(shard, chunks, sealed, elapsed)
            self._issue_locked(from_pump=True)

    def _deliver_locked(
        self, shard: int, chunks: List[Any], sealed: bool, elapsed: float
    ) -> None:
        self.shard = shard
        self.latencies.append(elapsed)
        self._latencies_by_shard.setdefault(shard, []).append(elapsed)
        if chunks:
            self._buffer.extend(chunks)
        elif sealed:
            self._eof = True
        else:
            self._retry_after = time.monotonic() + _UNSEALED_POLL_SECONDS
        self._cond.notify_all()

    # -- replicated failover -----------------------------------------------------

    def _handle_failure_locked(
        self, shard: int, seq: Optional[int], exc: BaseException
    ) -> None:
        parent = self._parent
        if seq is None:
            # Single-copy semantics match the legacy fetcher: the one
            # home shard refusing mid-stream ends the stream with the
            # failure (the master's coarse recovery owns what follows).
            # With a seq the sweep below retries even at replication 1:
            # a spilling shard respawns onto its reopened segment
            # directory, and the seq-deduplicated retry rides it out.
            self._error = exc
            self._eof = True
            self._cond.notify_all()
            return
        if isinstance(exc, NotPrimary):
            parent.adopt_epochs(_parse_epoch_vector(str(exc)))
        else:
            parent.mark_demoted(shard)
        # The fallback sweep must ride out reconnect backoffs and
        # promotion-push windows — blocking work, so it gets the one
        # thread this fetcher ever spawns. It retries the SAME seq: the
        # server removal log answers a request the dead primary
        # served-but-never-acked instead of serving it twice.
        thread = threading.Thread(
            target=self._sweep_fallback,
            args=(seq,),
            daemon=True,
            name=f"mux-fetch-recover-{self.bag_id}",
        )
        self._recovery = thread
        thread.start()

    def _await_interruptible(self, future: "Future[Any]") -> Any:
        while True:
            try:
                return future.result(timeout=0.1)
            except _FutureTimeout:
                if self._aborted:
                    raise _FetchAborted(self.bag_id) from None

    def _sleep_interruptible(self, delay: float) -> None:
        deadline = time.monotonic() + delay
        while not self._aborted:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.05))

    def _sweep_fallback(self, seq: int) -> None:
        """Replica sweep for one orphaned ``rremove_batch`` (own thread).

        An abort-aware unrolling of :meth:`ShardedBagStore.sweep`: every
        wait — future result, inter-round backoff — re-checks the abort
        flag on a short period, so ``stop()`` stays bounded even while a
        replica stalls or the whole set is mid-respawn.
        """
        parent = self._parent
        op_args = (
            "rremove_batch", self.bag_id, self.batch, parent.client_id, seq,
        )
        outcome: Optional[Tuple[int, Tuple[List[Any], bool], float]] = None
        error: Optional[BaseException] = None
        backoffs = parent.policy.backoffs()
        try:
            while outcome is None and not self._aborted:
                last_down: Optional[StorageNodeDown] = None
                for shard in parent.serving_order(self.bag_id):
                    if self._aborted:
                        break
                    started = time.perf_counter()
                    try:
                        result = self._await_interruptible(
                            parent.stores[shard].submit(*op_args)
                        )
                    except StorageNodeDown as exc:
                        parent.mark_demoted(shard)
                        last_down = exc
                    except NotPrimary as exc:
                        parent.adopt_epochs(_parse_epoch_vector(str(exc)))
                    else:
                        outcome = (
                            shard, result, time.perf_counter() - started
                        )
                        break
                if outcome is not None or self._aborted:
                    break
                delay = next(backoffs, None)
                if delay is None:
                    error = StorageNodeDown(
                        f"no replica of bag {self.bag_id!r} would serve "
                        f"(replicas {parent.router.replicas(self.bag_id)})"
                    )
                    error.__cause__ = last_down
                    break
                self._sleep_interruptible(delay)
        except _FetchAborted:
            pass
        except BaseException as exc:
            error = exc
        with self._cond:
            self._recovery = None
            if self._stopped or self._aborted:
                self._cond.notify_all()
                return
            if outcome is not None:
                shard, (chunks, sealed), elapsed = outcome
                self._deliver_locked(shard, chunks, sealed, elapsed)
                self._issue_locked(from_pump=True)
            else:
                self._error = error
                self._eof = True
                self._cond.notify_all()

    # -- consumer surface --------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next chunk, or ``None`` once the bag is drained and sealed.

        A ``timeout`` with nothing buffered raises the typed
        :class:`~repro.errors.FetchTimeout` — a signal that no chunk
        was lost (the next get may well succeed) — never a bare
        ``queue.Empty``-style implementation detail.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._buffer:
                    chunk = self._buffer.popleft()
                    self._issue_locked()
                    return chunk
                if self._eof:
                    if self._error is not None:
                        raise self._error
                    return None
                self._issue_locked()
                if self._buffer or self._eof:
                    continue
                now = time.monotonic()
                wait: Optional[float] = None
                if self._retry_after is not None:
                    wait = max(0.0, self._retry_after - now)
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        raise FetchTimeout(
                            f"no chunk from bag {self.bag_id!r} "
                            f"within {timeout}s"
                        )
                    wait = remaining if wait is None else min(wait, remaining)
                self._cond.wait(wait)

    def stop(self) -> None:
        """Stop streaming; bounded, and loud if cleanup hangs.

        There is no fetch thread to interrupt — an unresolved in-flight
        future just has its completion callback observe ``_stopped`` and
        drop the batch on the shared link (the pump and connection are
        the store's, not this fetcher's). Only an active failover sweep
        owns a thread; the abort flag unblocks its interruptible waits,
        and a sweep that survives the join anyway is a loud failure.
        """
        with self._cond:
            self._stopped = True
            self._aborted = True
            self._eof = True
            recovery = self._recovery
            self._cond.notify_all()
        if recovery is not None:
            recovery.join(timeout=2.0)
            if recovery.is_alive():
                raise ReproError(
                    f"failover sweep for bag {self.bag_id!r} survived "
                    f"stop(): its in-flight RPC could not be interrupted"
                )


#: Import-surface alias: the threaded per-connection fetcher this name
#: used to denote was deleted with the legacy storage channel.
BatchChunkFetcher = MuxBatchFetcher
