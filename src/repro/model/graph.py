"""Static application graphs: tasks, bags, and their wiring.

The static graph is what the programmer writes (Figure 1); the runtime
derives an :class:`~repro.model.execution_graph.ExecutionGraph` from it
(Figure 2) as cloning decisions are made. Validation enforces the paper's
execution-model assumptions: the graph is acyclic, every task input exists,
and each bag has at most one consuming task (clones of that task share the
bag; concurrent *different* consumers would race for chunks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import GraphError
from repro.model.costs import TaskCost

MergeRef = Union[str, Callable, None]


@dataclass(frozen=True)
class BagSpec:
    """A named data bag; ``codec_spec`` types its records for real execution."""

    bag_id: str
    codec_spec: Optional[object] = None

    def __post_init__(self):
        if not self.bag_id:
            raise GraphError("bag_id must be non-empty")


@dataclass(frozen=True)
class TaskSpec:
    """A task blueprint: identifier, wiring, code, merge, and cost model.

    ``inputs[0]`` is the *streamed* input the task drains chunk-by-chunk;
    any further inputs are *side state* loaded in full when a worker (or a
    clone) starts. ``fn`` is the real record-level function used by the
    local engine; ``cost`` drives the simulator. ``merge`` is a merge name
    from :mod:`repro.merges.registry`, a callable, or None for the default
    concatenation merge.
    """

    task_id: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    fn: Optional[Callable] = None
    merge: MergeRef = None
    cost: TaskCost = field(default_factory=TaskCost)
    phase: Optional[str] = None

    def __post_init__(self):
        if not self.task_id:
            raise GraphError("task_id must be non-empty")
        if not self.inputs:
            raise GraphError(f"task {self.task_id!r} needs at least one input bag")

    @property
    def stream_input(self) -> str:
        return self.inputs[0]

    @property
    def side_inputs(self) -> Tuple[str, ...]:
        return self.inputs[1:]

    @property
    def needs_merge(self) -> bool:
        """Whether cloning this task requires an explicit merge node."""
        return self.merge is not None


class AppGraph:
    """The static task/bag DAG, with validation and dependency queries."""

    def __init__(self, name: str):
        self.name = name
        self.bags: Dict[str, BagSpec] = {}
        self.tasks: Dict[str, TaskSpec] = {}

    # -- construction -------------------------------------------------------

    def add_bag(self, bag: BagSpec) -> BagSpec:
        if bag.bag_id in self.bags:
            raise GraphError(f"duplicate bag id {bag.bag_id!r}")
        self.bags[bag.bag_id] = bag
        return bag

    def add_task(self, task: TaskSpec) -> TaskSpec:
        if task.task_id in self.tasks:
            raise GraphError(f"duplicate task id {task.task_id!r}")
        for bag_id in (*task.inputs, *task.outputs):
            if bag_id not in self.bags:
                raise GraphError(
                    f"task {task.task_id!r} references unknown bag {bag_id!r}"
                )
        self.tasks[task.task_id] = task
        return task

    # -- queries -------------------------------------------------------------

    def producers_of(self, bag_id: str) -> List[TaskSpec]:
        return [t for t in self.tasks.values() if bag_id in t.outputs]

    def consumers_of(self, bag_id: str) -> List[TaskSpec]:
        return [t for t in self.tasks.values() if bag_id in t.inputs]

    def source_bags(self) -> List[str]:
        """Bags with no producing task: the job's external inputs."""
        produced = {b for t in self.tasks.values() for b in t.outputs}
        return [b for b in self.bags if b not in produced]

    def sink_bags(self) -> List[str]:
        """Bags no task consumes: the job's outputs."""
        consumed = {b for t in self.tasks.values() for b in t.inputs}
        return [b for b in self.bags if b not in consumed]

    def upstream_tasks(self, task_id: str) -> List[str]:
        """Tasks producing any input bag of ``task_id``."""
        task = self.tasks[task_id]
        ups = []
        for bag_id in task.inputs:
            ups.extend(p.task_id for p in self.producers_of(bag_id))
        return sorted(set(ups))

    def topological_tasks(self) -> List[str]:
        """Task ids in dependency order; raises GraphError on a cycle."""
        indegree = {tid: len(self.upstream_tasks(tid)) for tid in self.tasks}
        ready = sorted(tid for tid, deg in indegree.items() if deg == 0)
        order: List[str] = []
        downstream: Dict[str, List[str]] = {tid: [] for tid in self.tasks}
        for tid in self.tasks:
            for up in self.upstream_tasks(tid):
                downstream[up].append(tid)
        while ready:
            tid = ready.pop()
            order.append(tid)
            for down in downstream[tid]:
                indegree[down] -= 1
                if indegree[down] == 0:
                    ready.append(down)
        if len(order) != len(self.tasks):
            raise GraphError(f"application graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check the structural invariants the runtime relies on."""
        for bag_id in self.bags:
            consumers = self.consumers_of(bag_id)
            if len(consumers) > 1:
                raise GraphError(
                    f"bag {bag_id!r} is consumed by multiple tasks "
                    f"({[t.task_id for t in consumers]}); clones share a bag, "
                    "distinct tasks must not"
                )
        if not self.tasks:
            raise GraphError(f"application {self.name!r} has no tasks")
        self.topological_tasks()  # raises on cycles
